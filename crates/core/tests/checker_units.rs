//! Checker-by-checker unit tests: each of the 32 invariances is driven
//! with hand-built wire records — one clearly legal case (must stay
//! silent) and one clearly illegal case (must fire exactly that checker
//! family) — independent of the simulator.

#![allow(clippy::identity_op, clippy::erasing_op)]

use noc_sim::Observer;
use noc_types::record::{
    CycleRecord, EjectEvent, LocalArbEvent, RcEvent, ReadEvent, Sa2Event, Va2Event, VcEvent,
    WriteEvent,
};
use noc_types::{NocConfig, NodeId, PacketId};
use nocalert::AlertBank;

fn bank() -> AlertBank {
    AlertBank::new(&NocConfig::paper_baseline())
}

fn rec(router: u16) -> CycleRecord {
    let mut r = CycleRecord::default();
    r.reset(router);
    r
}

fn fired(bank: &AlertBank) -> Vec<u8> {
    bank.asserted_set().iter().map(|c| c.0).collect()
}

fn feed(bank: &mut AlertBank, r: &CycleRecord) {
    bank.on_cycle_record(100, r);
}

/// A legal RC event: header at head, East out from the Local port of an
/// interior router (id 27 = (3,3) in the 8×8 mesh), one hop to (4,3).
fn legal_rc() -> RcEvent {
    RcEvent {
        port: 4,
        vc: 0,
        dest_x: 4,
        dest_y: 3,
        head_valid: true,
        buf_empty: false,
        out_dir: 1, // East
        avoid_mask: 0,
        region_next: noc_types::record::REGION_NONE,
    }
}

#[test]
fn inv1_illegal_turn() {
    let mut b = bank();
    let mut r = rec(27);
    // Arrived on North (travelling south), exits East: forbidden Y→X.
    r.rc.push(RcEvent {
        port: 0,
        dest_x: 4,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&1));
}

#[test]
fn inv2_invalid_direction_and_dead_port() {
    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(RcEvent {
        out_dir: 6,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&2));

    // Corner router 0 has no West port: direction 3 is a dead port.
    let mut b = bank();
    let mut r = rec(0);
    r.rc.push(RcEvent {
        out_dir: 3,
        dest_x: 0,
        dest_y: 0,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&2));
}

#[test]
fn inv3_non_minimal_route() {
    let mut b = bank();
    let mut r = rec(27);
    // Destination is East but RC says West.
    r.rc.push(RcEvent {
        port: 4,
        out_dir: 3,
        dest_x: 5,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&3));
}

#[test]
fn inv1_3_degraded_route_around_fence_is_excused() {
    // Router 27 = (3,3), destination (5,3): XY says East, but East is
    // fenced (bit 1), so the fence-avoiding routing function detours —
    // North (bit 0) is the first productive alternative for a same-row
    // destination... there is none productive besides East, so the
    // non-minimal escape picks North. Whatever it picks, the recorded
    // output matching the re-derived expectation must stay silent even
    // though the turn/progress model would object.
    let mesh = NocConfig::paper_baseline().mesh;
    let cur = mesh.coord(NodeId(27));
    let dest = noc_types::Coord::new(5, 3);
    let avoid = [false, true, false, false, false]; // East fenced
    let expected =
        noc_sim::routing::route_avoiding(noc_types::RoutingAlgorithm::XY, mesh, cur, dest, &avoid);
    assert_ne!(expected.bits(), 1, "the detour must leave the XY path");
    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(RcEvent {
        port: 0, // arrived from North: plus the detour turn is Y→X-free
        dest_x: 5,
        out_dir: expected.bits(),
        avoid_mask: 0b10,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(
        fired(&b).is_empty(),
        "a fault-free degraded route must not assert: {:?}",
        fired(&b)
    );
}

#[test]
fn inv1_3_misroute_inside_detour_is_still_detected() {
    // Same fenced-East scenario, but the RC output wire is faulted to
    // West — neither the XY answer nor the detour's. The armed checkers
    // must catch it: the progress checker sees an unproductive hop that
    // the degraded expectation refuses to excuse.
    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(RcEvent {
        port: 4,
        dest_x: 5,
        out_dir: 3, // West: away from (5,3)
        avoid_mask: 0b10,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(
        fired(&b).contains(&3),
        "misroute inside a detour must fire inv3: {:?}",
        fired(&b)
    );
}

#[test]
fn inv1_3_region_table_detour_is_excused_and_misroute_detected() {
    // Fault-region tables installed: the recorded table entry is the
    // expectation. A matching non-minimal output is excused...
    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(RcEvent {
        port: 4,
        dest_x: 5,
        out_dir: 0, // North — non-minimal for (5,3)
        region_next: 0,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(
        fired(&b).is_empty(),
        "region-table detour must not assert: {:?}",
        fired(&b)
    );

    // ...while an output disagreeing with the table entry is caught.
    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(RcEvent {
        port: 4,
        dest_x: 5,
        out_dir: 3, // West, but the table says North
        region_next: 0,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(
        fired(&b).contains(&3),
        "table-divergent output must fire inv3: {:?}",
        fired(&b)
    );

    // The in-table no-route sentinel (7) decodes to a local eject: an
    // ejecting output is excused, anything else is not.
    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(RcEvent {
        port: 4,
        dest_x: 5,
        out_dir: 4, // Local eject of an unroutable destination
        region_next: 7,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(
        fired(&b).is_empty(),
        "sentinel eject must not assert: {:?}",
        fired(&b)
    );
}

#[test]
fn inv4_5_6_arbiter_anomalies() {
    // Grant without request.
    let mut b = bank();
    let mut r = rec(1);
    r.sa1.push(LocalArbEvent {
        port: 0,
        req: 0b0001,
        grant: 0b0010,
        credit_ok: 0b0001,
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&4));

    // Requests but no grant.
    let mut b = bank();
    let mut r = rec(1);
    r.va1.push(LocalArbEvent {
        port: 0,
        req: 0b0110,
        grant: 0,
        credit_ok: 0b0110,
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&5));

    // Two grants at once.
    let mut b = bank();
    let mut r = rec(1);
    r.sa1.push(LocalArbEvent {
        port: 0,
        req: 0b0111,
        grant: 0b0011,
        credit_ok: 0b0111,
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&6));
}

fn legal_va2() -> Va2Event {
    Va2Event {
        out_port: 1,
        req: 0b00001,
        grant: 0b00001,
        out_vc: 0,
        free_mask: 0b1111,
        winner: Some((0, 0)),
        winner_rc_port: Some(1),
        winner_class: Some(0),
        winner_won_va1: true,
    }
}

#[test]
fn inv7_grant_to_occupied_or_full() {
    // VA2 hands out a VC that is not free.
    let mut b = bank();
    let mut r = rec(1);
    r.va2.push(Va2Event {
        free_mask: 0b1110,
        ..legal_va2()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&7));

    // SA2 winner without a downstream credit.
    let mut b = bank();
    let mut r = rec(1);
    r.sa2.push(Sa2Event {
        out_port: 1,
        req: 0b00001,
        grant: 0b00001,
        winner: Some((0, 0)),
        winner_rc_port: Some(1),
        winner_won_sa1: true,
        winner_credit_ok: false,
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&7));
}

#[test]
fn inv8_input_vc_double_allocation() {
    let mut b = bank();
    let mut r = rec(1);
    // Port 0's VA1 winner is VC 2; two different VA2 arbiters both grant
    // port 0 in the same cycle.
    r.va1.push(LocalArbEvent {
        port: 0,
        req: 0b0100,
        grant: 0b0100,
        credit_ok: 0b0100,
    });
    r.va2.push(legal_va2());
    r.va2.push(Va2Event {
        out_port: 2,
        ..legal_va2()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&8));
}

#[test]
fn inv9_input_port_double_switch_grant() {
    let mut b = bank();
    let mut r = rec(1);
    for out_port in [1u8, 2] {
        r.sa2.push(Sa2Event {
            out_port,
            req: 0b00001,
            grant: 0b00001,
            winner: Some((0, 0)),
            winner_rc_port: Some(out_port as u64),
            winner_won_sa1: true,
            winner_credit_ok: true,
        });
    }
    feed(&mut b, &r);
    assert!(fired(&b).contains(&9));
}

#[test]
fn inv10_11_allocation_disagrees_with_rc() {
    let mut b = bank();
    let mut r = rec(1);
    r.va2.push(Va2Event {
        winner_rc_port: Some(3),
        ..legal_va2()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&10));

    let mut b = bank();
    let mut r = rec(1);
    r.sa2.push(Sa2Event {
        out_port: 1,
        req: 0b00001,
        grant: 0b00001,
        winner: Some((0, 0)),
        winner_rc_port: Some(2),
        winner_won_sa1: true,
        winner_credit_ok: true,
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&11));
}

#[test]
fn inv12_13_stage_order() {
    let mut b = bank();
    let mut r = rec(1);
    r.va2.push(Va2Event {
        winner_won_va1: false,
        ..legal_va2()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&12));

    let mut b = bank();
    let mut r = rec(1);
    r.sa2.push(Sa2Event {
        out_port: 1,
        req: 0b00001,
        grant: 0b00001,
        winner: Some((0, 0)),
        winner_rc_port: Some(1),
        winner_won_sa1: false,
        winner_credit_ok: true,
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&13));
}

#[test]
fn inv14_15_16_crossbar() {
    // Column with two drivers.
    let mut b = bank();
    let mut r = rec(1);
    r.xbar.matrix = (1 << (1 * 8 + 0)) | (1 << (1 * 8 + 2));
    r.xbar.in_count = 2;
    r.xbar.out_count = 2;
    feed(&mut b, &r);
    assert!(fired(&b).contains(&14));

    // Row driving two columns (multicast).
    let mut b = bank();
    let mut r = rec(1);
    r.xbar.matrix = (1 << (1 * 8 + 0)) | (1 << (2 * 8 + 0));
    r.xbar.in_count = 1;
    r.xbar.out_count = 1;
    feed(&mut b, &r);
    assert!(fired(&b).contains(&15));

    // Count mismatch.
    let mut b = bank();
    let mut r = rec(1);
    r.xbar.in_count = 2;
    r.xbar.out_count = 1;
    feed(&mut b, &r);
    assert!(fired(&b).contains(&16));
}

fn idle_vc_event() -> VcEvent {
    VcEvent {
        port: 0,
        vc: 0,
        state_before: 0,
        state_after: 0,
        ev_rc_done: false,
        ev_va_done: false,
        ev_sa_won: false,
        head_kind: 0,
        empty: true,
        out_port: 0,
        out_vc: 0,
    }
}

#[test]
fn inv17_pipeline_order() {
    for (ev_rc, ev_va, ev_sa, state) in [
        (true, false, false, 3u64), // RC fires on an Active VC
        (false, true, false, 1),    // VA fires before RC finished
        (false, false, true, 2),    // SA fires before VA finished
    ] {
        let mut b = bank();
        let mut r = rec(1);
        r.vc.push(VcEvent {
            state_before: state,
            state_after: state,
            ev_rc_done: ev_rc,
            ev_va_done: ev_va,
            ev_sa_won: ev_sa,
            empty: false,
            head_kind: 0,
            out_port: 1,
            out_vc: 0,
            ..idle_vc_event()
        });
        feed(&mut b, &r);
        assert!(fired(&b).contains(&17), "case {ev_rc}{ev_va}{ev_sa}");
    }
}

fn legal_write() -> WriteEvent {
    WriteEvent {
        port: 0,
        vc: 0,
        kind: 0,
        is_head: true,
        is_tail: false,
        vc_was_free: true,
        buf_was_full: false,
        prev_written_was_tail: true,
        arrived_count: 1,
        expected_len: 5,
    }
}

#[test]
fn inv18_body_flit_into_free_vc() {
    let mut b = bank();
    let mut r = rec(1);
    r.writes.push(WriteEvent {
        is_head: false,
        kind: 1,
        ..legal_write()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&18));
}

#[test]
fn inv19_invalid_stored_out_vc() {
    // Out-of-class VC parked in an Active VC's register (4 VCs, classes
    // {0,1}|{2,3}: input VC 0 with out_vc 3 is cross-class).
    let mut b = bank();
    let mut r = rec(1);
    r.vc.push(VcEvent {
        state_before: 3,
        state_after: 3,
        empty: false,
        out_port: 1,
        out_vc: 3,
        ..idle_vc_event()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&19));
}

#[test]
fn inv20_21_rc_on_bad_input() {
    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(RcEvent {
        head_valid: false,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&20));

    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(RcEvent {
        buf_empty: true,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&21));
}

#[test]
fn inv22_23_va_on_bad_input() {
    let mut b = bank();
    let mut r = rec(1);
    r.vc.push(VcEvent {
        state_before: 2,
        state_after: 3,
        ev_va_done: true,
        empty: false,
        head_kind: 1, // Body at the head
        out_port: 1,
        ..idle_vc_event()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&22));

    let mut b = bank();
    let mut r = rec(1);
    r.vc.push(VcEvent {
        state_before: 2,
        state_after: 3,
        ev_va_done: true,
        empty: true,
        out_port: 1,
        ..idle_vc_event()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&23));
}

#[test]
fn inv24_25_buffer_anomalies() {
    let mut b = bank();
    let mut r = rec(1);
    r.reads.push(ReadEvent {
        port: 0,
        vc: 0,
        was_empty: true,
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&24));

    let mut b = bank();
    let mut r = rec(1);
    r.writes.push(WriteEvent {
        buf_was_full: true,
        ..legal_write()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&25));
}

#[test]
fn inv26_atomicity_violation() {
    let mut b = bank();
    let mut r = rec(1);
    r.writes.push(WriteEvent {
        vc_was_free: false,
        ..legal_write()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&26));
}

#[test]
fn inv27_non_atomic_mixing() {
    let mut cfg = NocConfig::paper_baseline();
    cfg.buffer_policy = noc_types::BufferPolicy::NonAtomic;
    let mut b = AlertBank::new(&cfg);
    let mut r = rec(1);
    // A body flit follows a tail into an occupied VC.
    r.writes.push(WriteEvent {
        is_head: false,
        kind: 1,
        vc_was_free: false,
        prev_written_was_tail: true,
        arrived_count: 2,
        ..legal_write()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&27));
    // The same record must NOT fire 26 in non-atomic mode.
    assert!(!fired(&b).contains(&26));
}

#[test]
fn inv28_flit_count_violation() {
    // Tail arriving as the 4th flit of a 5-flit packet.
    let mut b = bank();
    let mut r = rec(1);
    r.writes.push(WriteEvent {
        is_head: false,
        is_tail: true,
        kind: 2,
        vc_was_free: false,
        arrived_count: 4,
        ..legal_write()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&28));

    // 6th flit of a 5-flit packet.
    let mut b = bank();
    let mut r = rec(1);
    r.writes.push(WriteEvent {
        is_head: false,
        kind: 1,
        vc_was_free: false,
        arrived_count: 6,
        ..legal_write()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&28));
}

#[test]
fn inv29_30_31_port_level_concurrency() {
    let mut b = bank();
    let mut r = rec(1);
    r.reads.push(ReadEvent {
        port: 0,
        vc: 0,
        was_empty: false,
    });
    r.reads.push(ReadEvent {
        port: 0,
        vc: 2,
        was_empty: false,
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&29));

    let mut b = bank();
    let mut r = rec(1);
    r.writes.push(legal_write());
    r.writes.push(WriteEvent {
        vc: 1,
        ..legal_write()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&30));

    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(legal_rc());
    r.rc.push(RcEvent {
        vc: 1,
        ..legal_rc()
    });
    feed(&mut b, &r);
    assert!(fired(&b).contains(&31));
}

#[test]
fn inv32_end_to_end() {
    let mut b = bank();
    let flit = noc_types::flit::make_packet(PacketId(9), 1, NodeId(0), NodeId(7), 0, 1, 0)[0];
    b.on_eject(&EjectEvent {
        node: NodeId(3),
        cycle: 5,
        flit,
    });
    assert_eq!(fired(&b), vec![32]);
}

#[test]
fn legal_records_fire_nothing() {
    let mut b = bank();
    let mut r = rec(27);
    r.rc.push(legal_rc());
    r.va1.push(LocalArbEvent {
        port: 0,
        req: 0b0001,
        grant: 0b0001,
        credit_ok: 0b0001,
    });
    r.sa1.push(LocalArbEvent {
        port: 0,
        req: 0b0001,
        grant: 0b0001,
        credit_ok: 0b0001,
    });
    r.va2.push(legal_va2());
    r.sa2.push(Sa2Event {
        out_port: 1,
        req: 0b00001,
        grant: 0b00001,
        winner: Some((0, 0)),
        winner_rc_port: Some(1),
        winner_won_sa1: true,
        winner_credit_ok: true,
    });
    r.xbar.matrix = 1 << (1 * 8 + 0);
    r.xbar.in_valid = 1;
    r.xbar.out_valid = 0b10;
    r.xbar.in_count = 1;
    r.xbar.out_count = 1;
    r.vc.push(VcEvent {
        state_before: 1,
        state_after: 2,
        ev_rc_done: true,
        empty: false,
        out_port: 1,
        ..idle_vc_event()
    });
    r.writes.push(legal_write());
    r.reads.push(ReadEvent {
        port: 1,
        vc: 0,
        was_empty: false,
    });
    feed(&mut b, &r);
    assert!(fired(&b).is_empty(), "spurious: {:?}", fired(&b));
}
