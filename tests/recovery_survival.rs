//! End-to-end survival pinning: any single persistent fault (permanent or
//! stuck-at) at a containment-covered site must end in exactly-once
//! delivery — detection drives containment, the fenced mesh keeps
//! routing, and the ARQ transport resends what containment destroyed.
//!
//! The full acceptance sweep lives in the `recovery` campaign binary
//! (`--smoke` gates CI); this test pins a deterministic sample so a
//! regression in any layer of the loop fails `cargo test` directly.

use fault::{FaultSpec, Watchdog};
use golden::{
    containment_covered, DeliveryVerdict, RecoveryHarness, RecoveryOptions, RecoveryOutcome,
};
use noc_sim::{ContainmentLevel, RecoveryPolicy};
use noc_types::site::SignalKind;
use noc_types::{Cycle, NocConfig, SiteRef};

fn recovery_cfg() -> NocConfig {
    let mut cfg = NocConfig::small_test();
    cfg.vcs_per_port = 2;
    cfg.message_classes = 1;
    cfg.packet_lengths = vec![5];
    cfg.injection_rate = 0.05;
    cfg
}

fn quick_opts() -> RecoveryOptions {
    RecoveryOptions {
        warmup: 200,
        active_window: 2_000,
        watchdog: Watchdog {
            cycle_budget: 120_000,
            stall_window: 1_500,
        },
        ..RecoveryOptions::paper_defaults()
    }
}

fn covered_sample(cfg: &NocConfig, n: usize) -> Vec<SiteRef> {
    let covered: Vec<SiteRef> = fault::enumerate_sites(cfg)
        .into_iter()
        .filter(|s| containment_covered(s.signal))
        .collect();
    assert!(
        covered.len() >= n,
        "covered universe unexpectedly small: {}",
        covered.len()
    );
    fault::sample::stride(&covered, n)
}

#[test]
fn persistent_faults_at_covered_sites_deliver_exactly_once() {
    let cfg = recovery_cfg();
    let h = RecoveryHarness::try_new(cfg.clone(), quick_opts()).expect("valid options");
    for site in covered_sample(&cfg, 6) {
        for spec in [
            FaultSpec::permanent(site, 900),
            FaultSpec::stuck_at(site, false, 900),
            FaultSpec::stuck_at(site, true, 900),
        ] {
            let run = h.run_isolated(Some(&spec));
            assert!(
                !matches!(run.outcome, RecoveryOutcome::Crashed(_)),
                "rollout crashed at {site:?} ({:?})",
                spec.kind
            );
            assert_eq!(
                run.verdict,
                DeliveryVerdict::ExactlyOnce,
                "delivery violated at {site:?} ({:?}): {:?} / {:?}",
                spec.kind,
                run.outcome,
                run.transport
            );
        }
    }
}

#[test]
fn containment_actually_fires_under_a_persistent_fault() {
    // Exactly-once alone could hide a do-nothing containment layer (the
    // fault might happen to be maskable). Pin that a persistent fault on a
    // covered site consumes alerts and escalates to quarantine, and that
    // the transport resent something across the disruption.
    let cfg = recovery_cfg();
    let h = RecoveryHarness::try_new(cfg.clone(), quick_opts()).expect("valid options");
    let site = covered_sample(&cfg, 6)[0];
    let run = h.run(Some(&FaultSpec::permanent(site, 900)));
    assert!(run.fault_hits > 0, "fault never touched a live wire");
    assert!(run.alerts > 0, "no invariance violations observed");
    assert!(
        run.recovery.alerts_consumed > 0,
        "no alerts reached containment"
    );
    assert!(
        run.recovery.disables > 0,
        "escalation never reached quarantine: {:?}",
        run.recovery
    );
    assert_eq!(run.verdict, DeliveryVerdict::ExactlyOnce);
}

fn buf_empty_site(cfg: &NocConfig, router: u16, port: u8, vc: u8) -> SiteRef {
    fault::enumerate_sites(cfg)
        .into_iter()
        .find(|s| {
            s.router == router && s.port == port && s.vc == vc && s.signal == SignalKind::BufEmpty
        })
        .expect("BufEmpty site exists at the pinned coordinates")
}

#[test]
fn duty_cycled_intermittent_buf_empty_delivers_and_quarantines() {
    // DESIGN.md §11's former known limit: a duty-cycled intermittent on
    // `BufEmpty` used to wedge the mesh — containment quarantined only the
    // upstream output side, so the faulty input VC kept replaying stale
    // flits as zombie worms, and each mid-worm reset orphaned the worm's
    // downstream fragment with its allocations held forever. Pin the exact
    // site and duty cycle that reproduced the hang: the run must now end
    // quiescent with the faulty VC quarantined and every message delivered
    // exactly once.
    let cfg = recovery_cfg();
    let site = buf_empty_site(&cfg, 2, 0, 1);
    let h = RecoveryHarness::try_new(cfg, quick_opts()).expect("valid options");
    let run = h.run_isolated(Some(&FaultSpec::intermittent(site, 50, 10, 900)));
    assert!(run.fault_hits > 0, "fault never touched a live wire");
    assert!(
        matches!(run.outcome, RecoveryOutcome::Quiescent),
        "network never recovered: {:?} / {:?}",
        run.outcome,
        run.recovery
    );
    assert_eq!(
        run.verdict,
        DeliveryVerdict::ExactlyOnce,
        "delivery violated: {:?} / {:?}",
        run.recovery,
        run.transport
    );
    assert!(
        run.trace.iter().any(|ev| ev.router == site.router
            && ev.port == site.port
            && ev.vc == site.vc
            && ev.level == ContainmentLevel::Disable),
        "faulty VC never quarantined: {:?}",
        run.trace
    );
}

#[test]
fn alert_silent_buf_empty_freeze_needs_the_worm_age_monitor() {
    // A single long `BufEmpty` burst that begins while a worm is ACTIVE
    // freezes it with flits still buffered: reads are skipped, no pipeline
    // events fire, and no invariance is violated — the stall is genuinely
    // alert-silent, so only the per-VC worm-age monitor can see it.
    let cfg = recovery_cfg();
    let site = buf_empty_site(&cfg, 7, 3, 0);
    let spec = FaultSpec::intermittent(site, 119_000, 118_999, 1_100);

    // Monitor disabled: the frozen worm wedges the drain phase forever.
    // This arm pins that the scenario still exercises the silent stall
    // (otherwise the recovering arm below proves nothing).
    let blind = RecoveryOptions {
        policy: RecoveryPolicy {
            stall_age: Cycle::MAX,
            ..RecoveryPolicy::default_policy()
        },
        ..quick_opts()
    };
    let h = RecoveryHarness::try_new(cfg.clone(), blind).expect("valid options");
    let run = h.run_isolated(Some(&spec));
    assert!(
        matches!(run.outcome, RecoveryOutcome::Hung(_)),
        "scenario no longer reproduces the alert-silent freeze: {:?}",
        run.outcome
    );

    // Monitor at defaults: the stalled worm ages out, containment drains
    // it, and the run ends quiescent with exactly-once delivery.
    let h = RecoveryHarness::try_new(cfg, quick_opts()).expect("valid options");
    let run = h.run_isolated(Some(&spec));
    assert!(
        matches!(run.outcome, RecoveryOutcome::Quiescent),
        "monitor failed to clear the frozen worm: {:?} / {:?}",
        run.outcome,
        run.recovery
    );
    assert_eq!(
        run.verdict,
        DeliveryVerdict::ExactlyOnce,
        "delivery violated: {:?} / {:?}",
        run.recovery,
        run.transport
    );
    assert!(
        run.trace
            .iter()
            .any(|ev| ev.router == site.router && ev.port == site.port && ev.vc == site.vc),
        "monitor never escalated the frozen VC: {:?}",
        run.trace
    );
}
