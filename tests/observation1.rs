//! Observation 1 at test scale: a sampled transient-fault campaign on a
//! 4×4 mesh must show **zero false negatives** for NoCAlert, with
//! near-instantaneous true-positive detection, and ForEVeR must agree on
//! every malicious fault while being orders of magnitude slower.

use golden::stats::{breakdown, cdf_at, latency_cdf};
use nocalert_repro::prelude::*;

fn campaign(warmup: u64) -> (Campaign, Vec<golden::RunResult>) {
    let mut noc = NocConfig::small_test();
    noc.injection_rate = 0.10;
    let cc = CampaignConfig {
        noc,
        warmup,
        active_window: 500,
        drain_deadline: 8_000,
        forever_epoch: 350,
    };
    let c = Campaign::new(cc);
    let sites = fault::sample::stride(&enumerate_sites(&c.config().noc), 48);
    let results = c.run_many(&sites, 4);
    (c, results)
}

#[test]
fn zero_false_negatives_for_both_detectors() {
    for warmup in [0u64, 1_500] {
        let (_c, results) = campaign(warmup);
        for d in [
            Detector::NoCAlert,
            Detector::NoCAlertCautious,
            Detector::ForEVeR,
        ] {
            let b = breakdown(&results, d);
            assert_eq!(b.fn_, 0.0, "{d:?} has false negatives at warmup {warmup}");
        }
        // Some faults must actually be malicious for the test to bite.
        assert!(
            results.iter().any(|r| r.malicious()),
            "no malicious faults sampled at warmup {warmup}"
        );
    }
}

#[test]
fn detection_is_near_instantaneous_and_beats_forever() {
    let (_c, results) = campaign(1_500);
    let na = latency_cdf(&results, Detector::NoCAlert);
    if !na.is_empty() {
        assert!(
            cdf_at(&na, 0) >= 60.0,
            "only {:.0}% instantaneous",
            cdf_at(&na, 0)
        );
        assert!(
            na.last().unwrap().0 <= 100,
            "worst-case NoCAlert latency {}",
            na.last().unwrap().0
        );
    }
    let fv = latency_cdf(&results, Detector::ForEVeR);
    if let (Some(n), Some(f)) = (na.last(), fv.last()) {
        assert!(
            f.0 > n.0,
            "ForEVeR ({}) should be slower than NoCAlert ({})",
            f.0,
            n.0
        );
    }
}

#[test]
fn true_positive_sets_agree_between_detectors() {
    // Paper: "the true positive percentages are identical for NoCAlert and
    // ForEVeR, since both mechanisms detected all network correctness
    // violations".
    let (_c, results) = campaign(1_500);
    for r in &results {
        if r.malicious() {
            assert!(r.nocalert.detected, "NoCAlert missed {}", r.site);
            assert!(r.forever.detected, "ForEVeR missed {}", r.site);
        }
    }
}

#[test]
fn campaign_results_are_reproducible() {
    // Thread-count independence is covered in the golden crate; here only
    // rebuild-identity on a trimmed-down campaign.
    let mut noc = NocConfig::small_test();
    noc.injection_rate = 0.10;
    let cc = CampaignConfig {
        noc,
        warmup: 400,
        active_window: 300,
        drain_deadline: 6_000,
        forever_epoch: 300,
    };
    let c1 = Campaign::new(cc.clone());
    let c2 = Campaign::new(cc);
    let sites = fault::sample::stride(&enumerate_sites(&c1.config().noc), 12);
    assert_eq!(c1.run_many(&sites, 2), c2.run_many(&sites, 4));
}
