//! **Checker-redundancy ablation** (Section 5.4: "all checkers detected
//! invariances in the absence of any other checker assertions. This fact
//! indicates that no single checker is redundant.")
//!
//! Runs the same sampled campaign once with the full checker array and
//! once per ablated checker, and reports (a) which checkers were the
//! *sole* detector of some fault (their removal creates false negatives),
//! and (b) the false-negative rate each ablation induces.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin ablate -- [--sites N] \
//!     [--warm W] [--threads T] [--checkpoint-dir D] [--resume]
//! ```

use fault::FaultSpec;
use golden::stats::breakdown;
use golden::{Campaign, CampaignConfig, Detector};
use nocalert::{info, CheckerId};
use nocalert_bench::{Args, Experiment};

fn main() {
    let args = Args::from_env();
    let mut exp = Experiment::from_args(&args);
    exp.sites = args.get("sites", 200);
    let warm: u64 = args.get("warm", 4_000);

    println!("== Checker-redundancy ablation ==");
    let cc = CampaignConfig::paper_defaults(exp.noc.clone(), warm);
    let baseline_campaign = Campaign::new(cc.clone());
    let sites = exp.site_list();
    let specs: Vec<FaultSpec> = sites
        .iter()
        .map(|&s| FaultSpec::transient(s, baseline_campaign.injection_cycle()))
        .collect();
    let baseline = exp.run_resilient(&baseline_campaign, &specs, "baseline");
    let b0 = breakdown(&baseline, Detector::NoCAlert);
    println!(
        "full checker array: TP {:.2}%  FP {:.2}%  FN {:.2}%  over {} injections\n",
        b0.tp, b0.fp, b0.fn_, b0.runs
    );

    // Which checkers ever fired in the baseline? Only those can matter.
    let mut fired = [false; CheckerId::COUNT];
    for r in &baseline {
        for c in &r.checkers {
            fired[c.index()] = true;
        }
    }

    println!("{:<6} {:>8} {:>10}  name", "inv", "FN%", "sole-det.");
    let mut essential = 0;
    for id in CheckerId::all() {
        if !fired[id.index()] {
            continue;
        }
        // Sole-detector count from the baseline results: runs where this
        // was the only asserted checker.
        let sole = baseline.iter().filter(|r| r.checkers == vec![id]).count();
        let mut campaign = Campaign::new(cc.clone());
        campaign.disable_checker(id);
        let results = exp.run_resilient(&campaign, &specs, &format!("ablate-{id}"));
        let b = breakdown(&results, Detector::NoCAlert);
        if b.fn_ > 0.0 {
            essential += 1;
        }
        println!(
            "{:<6} {:>8.2} {:>10}  {}",
            id.to_string(),
            b.fn_,
            sole,
            info(id).name
        );
    }
    println!(
        "\n{essential} ablations introduced false negatives on this sample;\n\
         checkers with sole-detections > 0 are non-redundant even when their\n\
         ablation FN%% is masked by overlapping checkers on malicious faults."
    );
}
