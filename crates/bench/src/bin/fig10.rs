//! **Figure 10 + Section 5.5** — hardware overhead of NoCAlert vs. DMR of
//! the control logic, swept over 2–8 VCs per port, plus the power and
//! critical-path summaries, from the analytic 65 nm gate model.
//!
//! Paper landmarks: NoCAlert area 1.38–4.42% (≈3% average, "fairly
//! constant"); DMR-CL 5.41% → 31.32%; power 0.3–1.2% (≈0.7%); critical
//! path ≤3%, ≈1% average.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin fig10 -- [--json out.json]
//! ```

use hw_model::{area, checker_costs, figure10, power, timing, AreaReport, HwParams};
use nocalert::{info, CheckerId};
use nocalert_bench::{maybe_write_json, row, Args};

fn main() {
    let args = Args::from_env();
    println!("== Figure 10: area overhead vs number of VCs per port ==");
    println!(
        "{:>4} {:>14} {:>12} {:>14} {:>14}",
        "VCs", "NoCAlert area%", "DMR-CL area%", "NoCAlert power%", "crit. path %"
    );
    let rows = figure10();
    for r in &rows {
        println!(
            "{:>4} {:>14.2} {:>12.2} {:>14.2} {:>14.2}",
            r.vcs, r.nocalert_area_pct, r.dmr_area_pct, r.nocalert_power_pct, r.critical_path_pct
        );
    }
    let avg_area: f64 = rows.iter().map(|r| r.nocalert_area_pct).sum::<f64>() / rows.len() as f64;
    let avg_pow: f64 = rows.iter().map(|r| r.nocalert_power_pct).sum::<f64>() / rows.len() as f64;
    println!("\nSummary vs paper:");
    row(
        "NoCAlert area average (paper ~3%)",
        format!("{avg_area:.2}%"),
    );
    row(
        "NoCAlert area range (paper 1.38-4.42%)",
        format!(
            "{:.2}-{:.2}%",
            rows.iter()
                .map(|r| r.nocalert_area_pct)
                .fold(f64::MAX, f64::min),
            rows.iter().map(|r| r.nocalert_area_pct).fold(0.0, f64::max)
        ),
    );
    row(
        "DMR-CL range (paper 5.41-31.32%)",
        format!("{:.2}-{:.2}%", rows[0].dmr_area_pct, rows[6].dmr_area_pct),
    );
    row(
        "power average (paper ~0.7%, <1.2%)",
        format!("{avg_pow:.2}%"),
    );
    row(
        "critical path (paper <=3%, ~1%)",
        format!(
            "{:.2}-{:.2}%",
            rows.iter()
                .map(|r| r.critical_path_pct)
                .fold(f64::MAX, f64::min),
            rows.iter().map(|r| r.critical_path_pct).fold(0.0, f64::max)
        ),
    );

    // Absolute baseline decomposition at 4 VCs.
    let p = HwParams::baseline_with_vcs(4);
    let a = area(&p);
    let pw = power(&p);
    let t = timing(&p);
    println!("\nBaseline router @ 4 VCs (65 nm estimates):");
    row("buffers", format!("{:.0} GE", a.buffers_ge));
    row("crossbar", format!("{:.0} GE", a.xbar_ge));
    row("control logic", format!("{:.0} GE", a.control_ge));
    row("32 checkers", format!("{:.0} GE", a.checkers_ge));
    row(
        "router area",
        format!("{:.3} mm²", AreaReport::ge_to_um2(a.router_ge()) / 1e6),
    );
    row("router power @1 GHz", format!("{:.1} mW", pw.router_mw));
    row("checker power", format!("{:.2} mW", pw.checkers_mw));
    row("critical path", format!("{:.0} ps", t.baseline_ps));

    println!("\nPer-checker gate cost (checkers are far cheaper than the units they watch):");
    let costs = checker_costs(&p);
    for id in CheckerId::all() {
        println!(
            "  inv{:<3} {:>8.0} GE  {}",
            id.0,
            costs[id.index()],
            info(id).name
        );
    }
    maybe_write_json(&args, &rows);
}
