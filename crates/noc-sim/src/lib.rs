//! Cycle-accurate Network-on-Chip simulator — the substrate of the
//! NoCAlert (MICRO 2012) reproduction.
//!
//! This crate plays the role GARNET plays in the paper: it models
//! input-buffered, five-stage pipelined virtual-channel routers
//! (RC → VA → SA → XBAR → LT) down to the micro-architectural level, on a
//! 2D mesh with wormhole switching and credit-based flow control, driven by
//! synthetic traffic. Two extensions make it the evaluation vehicle for
//! NoCAlert:
//!
//! * **Signal observation** — every router control module materializes its
//!   input/output wires each cycle into a [`noc_types::CycleRecord`] that
//!   is handed to an [`Observer`]. The NoCAlert checkers attach here.
//! * **In-line fault injection** — every one of those wires is routed
//!   through a [`fault_plane::FaultPlane`], so a single-bit fault armed on
//!   any [`noc_types::SiteRef`] corrupts the *functional* value and
//!   propagates physically (stale-slot replays, crossbar collisions,
//!   multicast duplication, overrun writes…).
//!
//! # Example
//!
//! ```
//! use noc_sim::Network;
//! use noc_types::NocConfig;
//!
//! let mut net = Network::new(NocConfig::small_test());
//! net.run(1_000);
//! assert!(net.stats().injected_flits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod arbiter;
pub mod arq;
pub mod buffer;
pub mod fault_plane;
pub mod fault_region;
pub mod network;
pub mod nic;
pub mod recovery;
pub mod router;
pub mod routing;
pub mod signals;
pub mod stats;
pub mod trace;
pub mod traffic;
pub mod transport;
pub mod vc;

pub use adversary::{Adversary, AttackIntent, AttackStats};
pub use fault_plane::{ArmedFault, FaultPlane};
pub use fault_region::{FaultRegionMap, RegionGrowth};
pub use network::{NetStats, Network, NullObserver, Observer};
pub use recovery::{
    ContainmentEvent, ContainmentLevel, RecoveryController, RecoveryPolicy, RecoveryStats,
};
pub use router::{CreditMsg, LinkFlit, Router};
pub use signals::{enumerate_all_sites, enumerate_router_sites, live_bits, signal_width};
pub use stats::{LatencyStats, StatsCollector};
pub use trace::TraceObserver;
pub use transport::{
    ArqConfig, ControlCapture, DeliveryRecord, FailureRecord, SuspicionEvent, Transport,
    TransportStats,
};
