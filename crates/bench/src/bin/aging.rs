//! **Aging campaign (DESIGN.md §13)** — survival under an accumulating
//! population of permanent faults. One continuous simulation absorbs one
//! more permanent fault per epoch (sampled containment-covered sites
//! first, then a deterministic column cut), with the fault-region
//! routing subsystem re-routing around the growing damage, until the
//! mesh truly partitions. The acceptance bar (exit code 1 on violation):
//! every epoch — including the partitioning one — delivers all
//! non-orphan traffic exactly once, no epoch stalls, and the terminal
//! state is reported [`golden::AgingOutcome::Partitioned`], never a
//! hang.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin aging -- \
//!     [--smoke] [--mesh K] [--rate F] [--organic N] [--cut-col X] \
//!     [--window C] [--seed S] [--checkpoint-dir PATH] [--resume] \
//!     [--json PATH]
//! ```
//!
//! `--smoke` runs the CI gate: the 4×4 campaign (two organic epochs plus
//! a four-row cut) with the same acceptance bar.
//!
//! With `--checkpoint-dir`, every settled epoch row is appended to
//! `epochs.jsonl` and flushed immediately through [`golden::EpochLog`]
//! (the same shard substrate the campaign checkpoints and `nocalertd`
//! jobs use); `--resume` re-simulates the stored prefix
//! deterministically and *verifies each recomputed row is bit-identical*
//! (including the fault-region state digest) before continuing — a
//! diverging checkpoint is a fatal error, not a silent fork. A
//! populated directory without `--resume` is refused rather than
//! overwritten.

use golden::{
    AgingError, AgingHarness, AgingOptions, AgingOutcome, AgingReport, EpochLog, EpochReport,
};
use nocalert_bench::{maybe_write_json, row, Args};
use std::path::Path;

fn fail(msg: &str) -> ! {
    eprintln!("[aging] fatal: {msg}");
    std::process::exit(2);
}

fn options_from(args: &Args) -> AgingOptions {
    let mut opts = if args.flag("smoke") {
        AgingOptions::smoke_defaults()
    } else {
        AgingOptions::paper_defaults()
    };
    let k: u8 = args.get("mesh", opts.noc.mesh.width());
    opts.noc.mesh = noc_types::Mesh::new(k, k);
    opts.noc.injection_rate = args.get("rate", opts.noc.injection_rate);
    opts.noc.seed = args.get("seed", opts.noc.seed);
    opts.organic_epochs = args.get("organic", opts.organic_epochs);
    opts.cut_column = args.get("cut-col", opts.cut_column.min(k.saturating_sub(2)));
    opts.epoch_window = args.get("window", opts.epoch_window);
    opts
}

fn outcome_tag(o: &AgingOutcome) -> String {
    match o {
        AgingOutcome::Progressed => "progressed".into(),
        AgingOutcome::Stalled => "STALLED".into(),
        AgingOutcome::Partitioned { components } => format!("PARTITIONED({components})"),
    }
}

fn print_epoch(e: &EpochReport) {
    row(
        &format!("epoch {:>2} (faults {:>2})", e.epoch, e.epoch + 1),
        format!(
            "{} | {}/{} delivered, {} orphans, {}{} | lat {} | regions {} dead {} absorbed {}",
            outcome_tag(&e.outcome),
            e.delivered,
            e.offered,
            e.orphans,
            if e.exactly_once {
                "exactly-once"
            } else {
                "LOST"
            },
            if e.gave_up > e.orphans {
                format!(" ({} unexcused give-ups)", e.gave_up - e.orphans)
            } else {
                String::new()
            },
            e.mean_latency(),
            e.regions,
            e.dead_links,
            e.absorbed,
        ),
    );
}

fn summarize(report: &AgingReport, opts: &AgingOptions) -> i32 {
    let Some(last) = report.epochs.last() else {
        fail("campaign produced no epochs");
    };
    println!("\n== Aging summary ==");
    row("epochs survived", report.epochs.len());
    row(
        "total cycles simulated",
        last.end_cycle.saturating_sub(opts.warmup),
    );
    row(
        "exactly-once epochs",
        format!("{}/{}", report.exactly_once_epochs(), report.epochs.len()),
    );
    row("stalled epochs", report.stalled_epochs());
    row(
        "terminal state",
        match report.partition() {
            Some(c) => format!("partitioned into {c} components"),
            None => "plan exhausted without partition".into(),
        },
    );
    // Satellite counters: cumulative fault-region growth at the end.
    row(
        "fault regions (formed / absorbed / reroutes)",
        format!(
            "{} / {} / {}",
            last.recovery.regions_formed,
            last.recovery.routers_absorbed,
            last.recovery.reroutes_taken
        ),
    );
    row(
        "final damage (regions / dead links / absorbed)",
        format!("{} / {} / {}", last.regions, last.dead_links, last.absorbed),
    );
    row("containment quarantines", last.recovery.disables);
    row(
        "final region digest",
        format!("{:#018x}", last.region_digest),
    );

    if report.accepted() {
        println!(
            "\nACCEPTED: exactly-once delivery sustained through {} accumulating faults, \
             then an honest partition.",
            report.epochs.len()
        );
        0
    } else {
        println!("\nVIOLATED: the mesh did not age gracefully (see rows above).");
        1
    }
}

fn main() {
    let args = Args::from_env();
    let opts = options_from(&args);
    let harness = match AgingHarness::try_new(opts.clone()) {
        Ok(h) => h,
        Err(e) => fail(&format!("harness rejected options: {e}")),
    };
    let plan_len = harness.plan().len();
    println!(
        "== Aging campaign: {}x{} mesh, {} organic epochs + {}-row cut at column {} ==",
        opts.noc.mesh.width(),
        opts.noc.mesh.height(),
        opts.organic_epochs,
        opts.noc.mesh.height(),
        opts.cut_column,
    );

    let (prior, mut log): (Vec<EpochReport>, Option<EpochLog>) = match args.str("checkpoint-dir") {
        Some(d) => match EpochLog::open(Path::new(d), &opts, args.flag("resume")) {
            Ok((prior, log)) => (prior, Some(log)),
            Err(e) => fail(&format!("checkpoint: {e}")),
        },
        None => (Vec::new(), None),
    };
    if !prior.is_empty() {
        eprintln!(
            "[aging] resuming: verifying {} checkpointed epoch(s) against re-simulation",
            prior.len()
        );
        for e in &prior {
            print_epoch(e);
        }
    }

    let t0 = std::time::Instant::now();
    let result = harness.run(&prior, |e| {
        print_epoch(e);
        if let Some(log) = log.as_mut() {
            if let Err(err) = log.append(e) {
                fail(&format!("checkpoint append: {err}"));
            }
        }
    });
    let report = match result {
        Ok(r) => r,
        Err(e @ AgingError::ResumeDivergence { .. }) => fail(&format!(
            "{e}; the checkpoint was produced by a different build or configuration — \
             delete it or drop --resume"
        )),
        Err(e) => fail(&format!("campaign failed: {e}")),
    };
    eprintln!(
        "[aging] {}/{} epochs in {:.1}s",
        report.epochs.len(),
        plan_len,
        t0.elapsed().as_secs_f64()
    );

    let code = summarize(&report, &opts);
    maybe_write_json(&args, &report);
    std::process::exit(code);
}
