//! **Recovery campaign (DESIGN.md §11)** — closes the loop the paper
//! defers to "an accompanying recovery mechanism": NoCAlert assertions
//! drive per-router containment (squash → VC reset → quarantine + fenced
//! degraded routing) while the NIC-level ARQ transport retransmits
//! whatever containment destroys. The campaign sweeps sampled
//! *containment-covered* fault sites (see
//! [`golden::containment_covered`]) across the fault classes and reports,
//! per class: delivered-packet ratio, exactly-once verdicts, containment
//! latency distribution, end-to-end delivery latency of retransmitted
//! messages, and wire overhead.
//!
//! The acceptance bar asserted here (exit code 1 on violation): every
//! sustained fault — permanent, stuck-at, *or intermittent* — at a
//! covered site must end in 100% exactly-once delivery. Intermittent
//! faults used to be carved out as a documented liveness limitation (an
//! alert-silent `BufEmpty` stall); input-side quarantine, end-to-end worm
//! teardown and the per-VC worm-age monitor closed that escape, so the
//! bar now enforces them. Transient (single-flip) faults remain
//! report-only.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin recovery -- \
//!     [--smoke] [--sites N] [--mesh K] [--rate F] [--threads T] \
//!     [--seed S] [--period P --duty D] \
//!     [--cycle-budget C] [--stall-window C] [--json PATH] \
//!     [--checkpoint-dir PATH] [--resume]
//! ```
//!
//! The sweep is a thin client of [`golden::RecoveryCampaign`] — the same
//! sharded engine `nocalertd` jobs run through — so `--checkpoint-dir`
//! gives it kill-safe incremental progress and `--resume` picks a
//! previous sweep back up, with aggregates bit-identical to an
//! uninterrupted run at any `--threads` value.
//!
//! `--smoke` runs the CI gate instead of the sweep: a 4×4 mesh, one fault
//! of each class at fixed covered sites, asserting 100% delivery.
//!
//! The mesh pools every VC into one message class (`message_classes = 1`)
//! unlike the detection campaigns' two-class baseline: quarantine must
//! always leave a sibling VC for the traffic the faulty one carried, and
//! with per-class singleton pools a single disable starves the class.

use fault::{FaultSpec, Watchdog};
use golden::{
    containment_covered, DeliveryVerdict, RecoveryCampaign, RecoveryCampaignConfig,
    RecoveryCampaignOptions, RecoveryHarness, RecoveryOptions, RecoveryRun,
};
use noc_types::{NocConfig, SiteRef};
use nocalert_bench::{maybe_write_json, row, Args};
use serde::Serialize;
use std::path::PathBuf;

/// The fault classes the campaign sweeps, in report order.
const CLASSES: [&str; 5] = [
    "transient",
    "intermittent",
    "permanent",
    "stuck-at-0",
    "stuck-at-1",
];

fn spec_for(class: &str, site: SiteRef, start: u64, period: u32, duty: u32) -> FaultSpec {
    match class {
        "transient" => FaultSpec::transient(site, start),
        "intermittent" => FaultSpec::intermittent(site, period, duty, start),
        "permanent" => FaultSpec::permanent(site, start),
        "stuck-at-0" => FaultSpec::stuck_at(site, false, start),
        _ => FaultSpec::stuck_at(site, true, start),
    }
}

/// Per-class aggregate of the sweep.
#[derive(Debug, Default, Serialize)]
struct ClassSummary {
    runs: u64,
    exactly_once: u64,
    hung: u64,
    crashed: u64,
    partitioned: u64,
    offered: u64,
    delivered: u64,
    retransmits: u64,
    control_packets: u64,
    /// Fault-start → last containment action, per run that contained.
    containment_latency: Vec<u64>,
    /// Offer → delivery latency of messages that needed a retransmit.
    retransmit_delivery_latency: Vec<u64>,
    /// Fault-region growth across the class's rollouts (FaultRegion
    /// routing only; zero under plain XY/WestFirst).
    regions_formed: u64,
    routers_absorbed: u64,
    reroutes_taken: u64,
}

impl ClassSummary {
    fn absorb(&mut self, run: &RecoveryRun) {
        self.runs += 1;
        if run.verdict == DeliveryVerdict::ExactlyOnce {
            self.exactly_once += 1;
        }
        match run.outcome {
            golden::RecoveryOutcome::Hung(_) => self.hung += 1,
            golden::RecoveryOutcome::Crashed(_) => self.crashed += 1,
            golden::RecoveryOutcome::Partitioned { .. } => self.partitioned += 1,
            golden::RecoveryOutcome::Quiescent => {}
        }
        self.offered += run.transport.offered;
        self.delivered += run.transport.delivered;
        self.retransmits += run.transport.retransmits;
        self.control_packets += run.transport.acks_sent + run.transport.nacks_sent;
        if let (Some(spec), Some(last)) = (run.spec, run.trace.last()) {
            self.containment_latency
                .push(last.cycle.saturating_sub(spec.start));
        }
        for rec in &run.deliveries {
            if rec.attempts > 0 {
                self.retransmit_delivery_latency
                    .push(rec.delivered_at.saturating_sub(rec.offered_at));
            }
        }
        self.regions_formed += run.recovery.regions_formed;
        self.routers_absorbed += run.recovery.routers_absorbed;
        self.reroutes_taken += run.recovery.reroutes_taken;
    }

    fn ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// `p` in [0,100] over an unsorted sample; 0 for an empty one.
fn percentile(sample: &mut [u64], p: usize) -> u64 {
    if sample.is_empty() {
        return 0;
    }
    sample.sort_unstable();
    let idx = (sample.len() - 1) * p / 100;
    sample[idx]
}

fn fail(msg: &str) -> ! {
    eprintln!("[recovery] fatal: {msg}");
    std::process::exit(2);
}

fn recovery_noc(args: &Args, mesh: u8) -> NocConfig {
    let mut noc = NocConfig::paper_baseline();
    let k: u8 = args.get("mesh", mesh);
    noc.mesh = noc_types::Mesh::new(k, k);
    noc.vcs_per_port = 2;
    noc.message_classes = 1;
    noc.packet_lengths = vec![5];
    noc.injection_rate = args.get("rate", 0.05);
    noc.seed = args.get("seed", noc.seed);
    noc
}

fn options_from(args: &Args) -> RecoveryOptions {
    let mut opts = RecoveryOptions::paper_defaults();
    opts.watchdog = Watchdog {
        cycle_budget: args.get("cycle-budget", opts.watchdog.cycle_budget),
        stall_window: args.get("stall-window", opts.watchdog.stall_window),
    };
    if let Err(e) = opts.validate() {
        fail(&format!("invalid options: {e}"));
    }
    opts
}

#[derive(Debug, Serialize)]
struct Report {
    mesh: u8,
    sites_swept: usize,
    classes: Vec<(String, ClassSummary)>,
    enforced_violations: u64,
    resumed: usize,
}

fn sweep(args: &Args) -> i32 {
    let noc = recovery_noc(args, 8);
    let opts = options_from(args);
    let threads: usize = args.get(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let covered: Vec<SiteRef> = fault::enumerate_sites(&noc)
        .into_iter()
        .filter(|s| containment_covered(s.signal))
        .collect();
    let want: usize = args.get("sites", 48);
    let sites = if want == 0 || want >= covered.len() {
        covered
    } else {
        fault::sample::stride(&covered, want)
    };
    let period: u32 = args.get("period", 50);
    let duty: u32 = args.get("duty", 10);
    let start = opts.warmup + 1_000;

    let campaign = match RecoveryCampaign::try_new(RecoveryCampaignConfig {
        noc: noc.clone(),
        opts,
    }) {
        Ok(c) => c,
        Err(e) => fail(&format!("campaign rejected config: {e}")),
    };

    println!(
        "== Recovery campaign: {}x{} mesh, {} covered sites x {} fault classes ==",
        noc.mesh.width(),
        noc.mesh.height(),
        sites.len(),
        CLASSES.len()
    );
    // Site-major, class-minor: class index of spec i is i % CLASSES.len(),
    // the same layout `golden::standard_recovery_specs` pins.
    let specs: Vec<FaultSpec> = sites
        .iter()
        .flat_map(|&site| {
            CLASSES
                .iter()
                .map(move |class| spec_for(class, site, start, period, duty))
        })
        .collect();
    let copts = RecoveryCampaignOptions {
        checkpoint_dir: args.str("checkpoint-dir").map(PathBuf::from),
        resume: args.flag("resume"),
        cancel: None,
    };
    let t0 = std::time::Instant::now();
    let report = match campaign.run_specs(&specs, threads, &copts) {
        Ok(r) => r,
        Err(e) => fail(&format!("campaign failed: {e}")),
    };
    eprintln!(
        "[recovery] {} rollouts in {:.1}s on {threads} threads ({} resumed)",
        report.reports.len(),
        t0.elapsed().as_secs_f64(),
        report.resumed
    );

    let mut classes: Vec<(String, ClassSummary)> = CLASSES
        .iter()
        .map(|c| (c.to_string(), ClassSummary::default()))
        .collect();
    let mut enforced_violations = 0u64;
    for (i, site_report) in report.reports.iter().enumerate() {
        let ci = i % CLASSES.len();
        let run = &site_report.run;
        classes[ci].1.absorb(run);
        let class = CLASSES[ci];
        // Every sustained fault class is enforced; only single-flip
        // transients stay report-only.
        let enforced = !matches!(class, "transient");
        if enforced && run.verdict != DeliveryVerdict::ExactlyOnce {
            enforced_violations += 1;
            eprintln!(
                "[recovery] VIOLATION {class} at {:?}: {:?} ({:?})",
                run.spec.map(|s| s.site),
                run.verdict,
                run.outcome
            );
        }
    }

    for (name, s) in &mut classes {
        println!("\n-- {name} --");
        row("rollouts (exactly-once / hung / partitioned / crashed)", {
            format!(
                "{} ({} / {} / {} / {})",
                s.runs, s.exactly_once, s.hung, s.partitioned, s.crashed
            )
        });
        if s.regions_formed + s.routers_absorbed + s.reroutes_taken > 0 {
            row(
                "fault regions (formed / absorbed / reroutes)",
                format!(
                    "{} / {} / {}",
                    s.regions_formed, s.routers_absorbed, s.reroutes_taken
                ),
            );
        }
        row(
            "delivered-packet ratio",
            format!("{:.6} ({}/{})", s.ratio(), s.delivered, s.offered),
        );
        row(
            "wire overhead per offered message",
            format!(
                "{:.4} retransmits + {:.4} control",
                s.retransmits as f64 / s.offered.max(1) as f64,
                s.control_packets as f64 / s.offered.max(1) as f64
            ),
        );
        let (p50, p90, max) = {
            let lat = &mut s.containment_latency;
            (
                percentile(lat, 50),
                percentile(lat, 90),
                lat.last().copied().unwrap_or(0),
            )
        };
        row(
            "containment latency cycles (p50/p90/max)",
            format!("{p50} / {p90} / {max}"),
        );
        let (dp50, dp90, dmax) = {
            let lat = &mut s.retransmit_delivery_latency;
            (
                percentile(lat, 50),
                percentile(lat, 90),
                lat.last().copied().unwrap_or(0),
            )
        };
        row(
            "retransmitted-delivery latency (p50/p90/max)",
            format!("{dp50} / {dp90} / {dmax}"),
        );
    }

    let out = Report {
        mesh: noc.mesh.width(),
        sites_swept: sites.len(),
        classes,
        enforced_violations,
        resumed: report.resumed,
    };
    maybe_write_json(args, &out);

    if enforced_violations == 0 {
        println!("\nACCEPTED: 100% exactly-once delivery under every sustained fault swept.");
        0
    } else {
        println!("\nVIOLATED: {enforced_violations} sustained-fault rollouts lost delivery.");
        1
    }
}

/// The CI gate: a 4×4 mesh, one fault of each class at a fixed covered
/// site, 100% delivery or a non-zero exit.
fn smoke(args: &Args) -> i32 {
    use noc_types::site::SignalKind;
    let noc = recovery_noc(args, 4);
    let opts = options_from(args);
    let start = opts.warmup + 1_000;
    let harness = match RecoveryHarness::try_new(noc.clone(), opts) {
        Ok(h) => h,
        Err(e) => fail(&format!("harness rejected config: {e}")),
    };
    // One covered site per fault class, spread over distinct checker
    // families. Intermittent deliberately lands on BufEmpty: duty-cycled
    // faults there used to stall worms alert-silently (the fixed DESIGN.md
    // §11 escape), so this pairing is the regression canary.
    let wanted: [(&str, SignalKind); 5] = [
        ("transient", SignalKind::VcEvSaWon),
        ("intermittent", SignalKind::BufEmpty),
        ("permanent", SignalKind::BufFull),
        ("stuck-at-0", SignalKind::RcHeadValid),
        ("stuck-at-1", SignalKind::RcOutDir),
    ];
    let universe = fault::enumerate_sites(&noc);
    let period: u32 = args.get("period", 50);
    let duty: u32 = args.get("duty", 10);
    println!("== Recovery smoke: 4x4 mesh, one fault per class ==");
    let mut failures = 0;
    for (class, signal) in wanted {
        // A middle-of-mesh router sees the densest traffic mix.
        let matching: Vec<&SiteRef> = universe.iter().filter(|s| s.signal == signal).collect();
        let Some(&&site) = matching.get(matching.len() / 2) else {
            fail(&format!("no site with signal {signal:?} in the universe"));
        };
        let spec = spec_for(class, site, start, period, duty);
        let run = harness.run_isolated(Some(&spec));
        let ok = run.verdict == DeliveryVerdict::ExactlyOnce;
        row(
            &format!("{class} @ {:?}", site),
            format!(
                "{} (ratio {:.3}, {} retransmits, {} containments, {:?})",
                if ok { "exactly-once" } else { "VIOLATED" },
                run.delivery_ratio(),
                run.transport.retransmits,
                run.trace.len(),
                run.outcome
            ),
        );
        if !ok {
            failures += 1;
            eprintln!(
                "[recovery] smoke FAILED for {class}: {:?} / {:?}",
                run.verdict, run.outcome
            );
        }
    }
    if failures == 0 {
        println!("\nSMOKE PASSED: 100% exactly-once delivery for every fault class.");
        0
    } else {
        println!("\nSMOKE FAILED: {failures} class(es) lost delivery.");
        1
    }
}

fn main() {
    let args = Args::from_env();
    let code = if args.flag("smoke") {
        smoke(&args)
    } else {
        sweep(&args)
    };
    std::process::exit(code);
}
