//! Miscellaneous cross-crate consistency checks: Table-1 registry vs.
//! hardware model vs. checker bank, ablation behaviour, and the
//! micro-architecture variations of Section 4.4.

use hw_model::{checker_costs, HwParams};
use nocalert::{CheckerId, TABLE1};
use nocalert_repro::prelude::*;

#[test]
fn registry_model_and_bank_agree_on_checker_count() {
    assert_eq!(TABLE1.len(), 32);
    assert_eq!(CheckerId::COUNT, 32);
    let costs = checker_costs(&HwParams::baseline_with_vcs(4));
    assert_eq!(costs.len(), 32);
}

#[test]
fn ablation_disabling_a_checker_creates_detection_gaps() {
    // Disable the crossbar checkers and hit the crossbar: the remaining
    // checkers may still catch downstream effects, but the crossbar ones
    // must stay silent — the ablation knob works end-to-end.
    let mut cfg = NocConfig::small_test();
    cfg.injection_rate = 0.2;
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    for id in [14, 15, 16] {
        bank.disable(CheckerId(id));
    }
    net.run(500);
    net.arm_fault(
        SiteRef {
            router: 5,
            port: 1,
            vc: 0,
            signal: noc_types::site::SignalKind::XbarCol,
            bit: 3,
        },
        FaultKind::Permanent,
        net.cycle(),
    );
    for _ in 0..2_000 {
        net.step_observed(&mut bank);
    }
    assert!(net.fault_hits() > 0);
    for id in [14u8, 15, 16] {
        assert_eq!(bank.counts()[CheckerId(id).index()], 0);
    }
}

#[test]
fn section_4_4_non_atomic_swaps_invariance_26_for_27() {
    let mut cfg = NocConfig::small_test();
    cfg.buffer_policy = noc_types::BufferPolicy::NonAtomic;
    cfg.injection_rate = 0.2;
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    for _ in 0..3_000 {
        net.step_observed(&mut bank);
    }
    // Fault-free: neither fires; and 26 can never fire in this mode.
    assert!(bank.assertions().is_empty());
    // Now hammer buffer writes: only 27-family checkers may respond.
    net.arm_fault(
        SiteRef {
            router: 5,
            port: 0,
            vc: 0,
            signal: noc_types::site::SignalKind::BufWrite,
            bit: 0,
        },
        FaultKind::Permanent,
        net.cycle(),
    );
    for _ in 0..2_000 {
        net.step_observed(&mut bank);
    }
    assert_eq!(
        bank.counts()[CheckerId(26).index()],
        0,
        "invariance 26 must stay disabled with non-atomic buffers"
    );
}

#[test]
fn section_4_4_west_first_relaxes_turn_set_but_still_detects() {
    let mut cfg = NocConfig::small_test();
    cfg.routing = noc_types::RoutingAlgorithm::WestFirst;
    cfg.injection_rate = 0.15;
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    for _ in 0..3_000 {
        net.step_observed(&mut bank);
    }
    assert!(
        bank.assertions().is_empty(),
        "west-first fault-free silence"
    );
    net.arm_fault(
        SiteRef {
            router: 5,
            port: 4,
            vc: 0,
            signal: noc_types::site::SignalKind::RcOutDir,
            bit: 1,
        },
        FaultKind::Permanent,
        net.cycle(),
    );
    for _ in 0..2_000 {
        net.step_observed(&mut bank);
    }
    assert!(net.fault_hits() > 0);
    assert!(
        bank.any_asserted(),
        "RC faults detected under west-first too"
    );
}

#[test]
fn forever_epoch_length_trades_latency_for_false_positives() {
    // Shorter epochs detect sooner; the paper chose 1,500 as the shortest
    // with acceptable false positives. Check latency monotonicity on a
    // deadlock-inducing fault.
    let mut cfg = NocConfig::small_test();
    cfg.injection_rate = 0.12;
    let mut latencies = Vec::new();
    for epoch in [200u64, 800] {
        let cc = CampaignConfig {
            noc: cfg.clone(),
            warmup: 500,
            active_window: 500,
            drain_deadline: 9_000,
            forever_epoch: epoch,
        };
        let campaign = Campaign::new(cc);
        // A suppressed buffer write on a busy port wedges a wormhole.
        let r = campaign.run_spec(fault::FaultSpec::permanent(
            SiteRef {
                router: 5,
                port: 4,
                vc: 0,
                signal: noc_types::site::SignalKind::BufWrite,
                bit: 0,
            },
            campaign.injection_cycle(),
        ));
        if r.malicious() && r.forever.detected {
            latencies.push((epoch, r.forever.latency.unwrap()));
        }
    }
    if latencies.len() == 2 {
        assert!(
            latencies[0].1 <= latencies[1].1,
            "shorter epochs should not detect later: {latencies:?}"
        );
    }
}

#[test]
fn run_result_serializes_to_json() {
    let mut cfg = NocConfig::small_test();
    cfg.injection_rate = 0.1;
    let cc = CampaignConfig {
        noc: cfg.clone(),
        warmup: 200,
        active_window: 200,
        drain_deadline: 5_000,
        forever_epoch: 200,
    };
    let campaign = Campaign::new(cc);
    let site = enumerate_sites(&cfg)[0];
    let r = campaign.run_site(site);
    let json = serde_json::to_string(&r).expect("serialize");
    assert!(json.contains("\"site\""));
    assert!(json.contains("\"verdict\""));
}

#[test]
fn intermittent_faults_sit_between_transient_and_permanent() {
    // An intermittent fault (duty-cycled) on an arbiter grant wire must
    // hit more often than a transient and no more often than a permanent.
    let mut cfg = NocConfig::small_test();
    cfg.injection_rate = 0.15;
    let site = SiteRef {
        router: 5,
        port: 0,
        vc: 0,
        signal: noc_types::site::SignalKind::Sa1Req,
        bit: 0,
    };
    let mut hits = Vec::new();
    for kind in [
        FaultKind::Transient,
        FaultKind::Intermittent {
            period: 10,
            duty: 3,
        },
        FaultKind::Permanent,
    ] {
        let mut net = Network::new(cfg.clone());
        net.run(300);
        net.arm_fault(site, kind, net.cycle());
        net.run(400);
        hits.push(net.fault_hits());
    }
    assert_eq!(hits[0], 1, "transient hits exactly once on a hot wire");
    assert!(hits[0] < hits[1], "intermittent > transient: {hits:?}");
    assert!(hits[1] < hits[2], "permanent > intermittent: {hits:?}");
    // Duty cycle 3/10 on an every-cycle wire ≈ 30% of the permanent count.
    let ratio = hits[1] as f64 / hits[2] as f64;
    assert!((0.25..0.35).contains(&ratio), "duty ratio {ratio}");
}

#[test]
fn degenerate_1xn_meshes_work() {
    let mut cfg = NocConfig::paper_baseline();
    cfg.mesh = Mesh::new(8, 1);
    cfg.injection_rate = 0.05;
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    for _ in 0..2_000 {
        net.step_observed(&mut bank);
    }
    let drained = net.drain(&mut bank, 15_000);
    assert!(drained);
    assert!(net.stats().ejected_flits > 0);
    assert!(bank.assertions().is_empty());
}

#[test]
fn higher_ejection_rate_reduces_latency() {
    let mut lat = Vec::new();
    for rate in [1u8, 2] {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.30;
        cfg.ejection_rate = rate;
        let mut net = Network::new(cfg);
        net.run(4_000);
        lat.push(net.stats().mean_latency());
    }
    assert!(
        lat[1] <= lat[0],
        "wider ejection should not hurt latency: {lat:?}"
    );
}
