//! Property-based integration tests over the whole stack: across random
//! configurations (mesh shape, VC count, buffer policy, routing algorithm,
//! traffic pattern, load), a fault-free network conserves flits, delivers
//! in order, drains, and never trips a NoCAlert checker or a ForEVeR
//! alarm.
//!
//! The environment is offline, so instead of proptest strategies the
//! configuration space is sampled with the in-tree deterministic RNG: each
//! case is reproducible from the fixed seed below, and a failure message
//! carries the full offending `NocConfig`.

use nocalert_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct Log {
    injected: Vec<Flit>,
    ejected: Vec<(NodeId, Flit)>,
}

impl Observer for Log {
    fn on_inject(&mut self, _c: u64, f: &Flit) {
        self.injected.push(*f);
    }
    fn on_eject(&mut self, ev: &noc_types::record::EjectEvent) {
        self.ejected.push((ev.node, ev.flit));
    }
}

/// Draws one configuration from the same space the proptest strategy this
/// replaces covered.
fn arb_config(rng: &mut SmallRng) -> NocConfig {
    let mut cfg = NocConfig::paper_baseline();
    cfg.mesh = Mesh::new(rng.gen_range(2u8..5), rng.gen_range(2u8..5));
    cfg.vcs_per_port = if rng.gen_bool(0.5) { 2 } else { 4 };
    cfg.message_classes = 2;
    let len = rng.gen_range(1u16..7);
    cfg.packet_lengths = vec![len, len];
    cfg.buffer_depth = rng.gen_range(2u8..6);
    cfg.buffer_policy = if rng.gen_bool(0.5) {
        noc_types::BufferPolicy::Atomic
    } else {
        noc_types::BufferPolicy::NonAtomic
    };
    cfg.routing = if rng.gen_bool(0.5) {
        noc_types::RoutingAlgorithm::XY
    } else {
        noc_types::RoutingAlgorithm::WestFirst
    };
    cfg.traffic = match rng.gen_range(0u32..4) {
        0 => TrafficPattern::UniformRandom,
        1 => TrafficPattern::Transpose,
        2 => TrafficPattern::Tornado,
        _ => TrafficPattern::Neighbor,
    };
    cfg.injection_rate = 0.02 + rng.gen::<f64>() * 0.23;
    cfg.seed = rng.gen_range(0u64..1_000_000);
    cfg
}

const CASES: usize = 12;

#[test]
fn fault_free_network_is_correct_and_silent() {
    let mut rng = SmallRng::seed_from_u64(0x51_AE_57);
    for case in 0..CASES {
        let cfg = arb_config(&mut rng);
        let mut net = Network::new(cfg.clone());
        let mut bank = AlertBank::new(&cfg);
        // Paper epoch length: shorter epochs are documented to false-alarm
        // under congestion (the counter never touches zero inside one
        // epoch), which is a property of ForEVeR, not a simulator bug.
        let mut fv = Forever::new(&cfg, 1_500);
        let mut log = Log::default();
        for _ in 0..1_200 {
            net.step_observed(&mut (&mut bank, &mut fv, &mut log));
        }
        let drained = net.drain(&mut (&mut bank, &mut fv, &mut log), 15_000);
        assert!(drained, "case {case}: failed to drain, cfg {cfg:?}");

        // Conservation: every injected flit delivered exactly once at its
        // destination, in intra-packet order, uncorrupted.
        let mut delivered: HashMap<u64, u32> = HashMap::new();
        let mut next_seq: HashMap<u64, u16> = HashMap::new();
        for (node, f) in &log.ejected {
            assert_eq!(f.dest, *node, "case {case}: misdelivery, cfg {cfg:?}");
            assert!(!f.corrupted, "case {case}: corruption, cfg {cfg:?}");
            *delivered.entry(f.uid).or_default() += 1;
            let e = next_seq.entry(f.packet.0).or_default();
            assert_eq!(f.seq, *e, "case {case}: reordering, cfg {cfg:?}");
            *e += 1;
        }
        for f in &log.injected {
            assert_eq!(
                delivered.get(&f.uid).copied().unwrap_or(0),
                1,
                "case {case}: flit lost or duplicated, cfg {cfg:?}"
            );
        }
        assert_eq!(log.injected.len(), log.ejected.len(), "case {case}");

        // Silence: neither detector may raise anything without a fault.
        assert!(
            bank.assertions().is_empty(),
            "case {case}: NoCAlert spurious: {:?}, cfg {cfg:?}",
            bank.assertions().first()
        );
        assert!(
            fv.detections().is_empty(),
            "case {case}: ForEVeR spurious: {:?}, cfg {cfg:?}",
            fv.detections().first()
        );
    }
}

#[test]
fn single_bit_faults_never_produce_undetected_violations() {
    // The headline property (Observation 1), fuzzed across the whole
    // configuration space rather than just the paper baseline.
    let mut rng = SmallRng::seed_from_u64(0xFA_017);
    for case in 0..CASES {
        let mut cfg = arb_config(&mut rng);
        cfg.injection_rate = cfg.injection_rate.max(0.05);
        let cc = CampaignConfig {
            noc: cfg.clone(),
            warmup: rng.gen_range(200u64..900),
            active_window: 400,
            drain_deadline: 8_000,
            forever_epoch: 350,
        };
        let campaign = Campaign::new(cc);
        let sites = enumerate_sites(&cfg);
        let site = sites[rng.gen_range(0usize..5_000) % sites.len()];
        let r = campaign.run_site(site);
        if r.malicious() {
            assert!(
                r.nocalert.detected,
                "case {case}: false negative at {} (verdict {:?}), cfg {cfg:?}",
                site, r.verdict.violations
            );
        }
        if !r.nocalert.detected {
            assert!(
                !r.malicious(),
                "case {case}: Observation 5 violated at {site}, cfg {cfg:?}"
            );
        }
    }
}
