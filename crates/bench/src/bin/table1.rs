//! **Table 1** — the complete list of the 32 invariances with their
//! modules, Figure-3 correctness categories, risk levels and buffer-policy
//! applicability, straight from the checker registry.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin table1
//! ```

use nocalert::{Category, Risk, TABLE1};

fn cat(c: &Category) -> &'static str {
    match c {
        Category::NoFlitDrop => "drop",
        Category::BoundedDelivery => "bounded",
        Category::NoNewFlit => "new-flit",
        Category::NoMixing => "mixing",
    }
}

fn main() {
    println!("== Table 1: the 32 NoCAlert invariances ==\n");
    let mut module = String::new();
    for e in &TABLE1 {
        let m = e
            .module
            .map(|m| m.to_string())
            .unwrap_or_else(|| "NET".to_string());
        if m != module {
            println!("--- {m} ---");
            module = m;
        }
        let cats: Vec<&str> = e.categories.iter().map(cat).collect();
        println!(
            "{:>3}  {:<44} [{}]{}{}",
            e.id.0,
            e.name,
            cats.join(", "),
            if e.risk == Risk::Low {
                "  (low-risk)"
            } else {
                ""
            },
            match e.applicability {
                nocalert::Applicability::Always => "",
                nocalert::Applicability::AtomicOnly => "  (atomic buffers)",
                nocalert::Applicability::NonAtomicOnly => "  (non-atomic buffers)",
            }
        );
        println!("     {}", e.rule);
        let fmt = |sigs: &[noc_types::site::SignalKind]| {
            sigs.iter()
                .map(|s| format!("{s:?}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "     observes: {{{}}}  constrains: {{{}}}",
            fmt(e.observes),
            fmt(e.constrains)
        );
    }
    println!(
        "\n{} invariances; low-risk set = {{1, 3}} (Observation 2)",
        TABLE1.len()
    );

    // The machine-readable signal sets feed the static coverage analysis
    // (`noc-lint`), so this artifact generator doubles as an assertion
    // that they are complete and internally consistent.
    let mut bad = 0;
    for e in &TABLE1 {
        if e.observes.is_empty() {
            eprintln!("metadata error: inv{} observes nothing", e.id.0);
            bad += 1;
        }
        for s in e.constrains {
            if !e.observes.contains(s) {
                eprintln!(
                    "metadata error: inv{} constrains {s:?} without observing it",
                    e.id.0
                );
                bad += 1;
            }
        }
        if let Some(m) = e.module {
            if !e.observes.iter().any(|s| s.module() == m) {
                eprintln!(
                    "metadata error: inv{} is owned by {m} but observes none of its signals",
                    e.id.0
                );
                bad += 1;
            }
        }
    }
    if bad > 0 {
        eprintln!("{bad} metadata error(s)");
        std::process::exit(1);
    }
    println!("observes/constrains metadata: complete and consistent");
}
