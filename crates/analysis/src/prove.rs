//! Pass 2 — exhaustive invariant proving over small combinational cones.
//!
//! The runtime checkers must be **silent on a fault-free router** (zero
//! false positives, Section 5 of the paper). For three cones the input
//! space is small enough to enumerate completely, so the property is
//! *proved*, not sampled:
//!
//! * **Arbiter cone** — every `(width, priority pointer, request vector)`
//!   of the round-robin arbiter that implements VA1/VA2/SA1/SA2. The
//!   grants it emits must never trip invariances 4/5/6.
//! * **Routing cone** — every `(algorithm, source, destination)` walk on
//!   the mesh. Each hop's RC output must be a valid, live, turn-legal,
//!   minimal direction (invariances 1/2/3 silent) and every walk must
//!   deliver in exactly the Manhattan distance.
//! * **VC-state cone** — every `(state, event combination, speculative)`
//!   input of the pipeline-order checker. Here we prove an equivalence:
//!   invariance 17 fires *iff* the combination is illegal under the
//!   microarchitectural event model — silence on all legal inputs **and**
//!   detection of all illegal ones.
//!
//! Crucially, the predicates proved here are the very functions the
//! runtime [`nocalert::AlertBank`] evaluates (`nocalert::predicates`,
//! `noc_sim::routing`) — there is no re-derivation that could drift.

use crate::diag::{Diagnostic, Pass, Severity};
use noc_sim::arbiter::RoundRobin;
use noc_sim::routing::{productive, route, turn_legal};
use noc_types::config::{NocConfig, RoutingAlgorithm};
use noc_types::geometry::{Coord, Direction};
use nocalert::predicates::{check_arbiter_wires, vc_order_violated};
use serde::Serialize;

/// Outcome of exhaustively enumerating one cone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConeProof {
    /// Cone name (`arbiter`, `routing-xy`, ...).
    pub cone: String,
    /// Inputs enumerated.
    pub cases: u64,
    /// Inputs violating the property (0 ⇒ proved).
    pub violations: u64,
}

fn violation(code: &'static str, msg: String) -> Diagnostic {
    Diagnostic::new(Pass::Prove, code, Severity::Error, msg)
}

/// Proves the arbiter grants silent under invariances 4/5/6 for every
/// reachable `(width, pointer, request)` input.
///
/// Widths cover everything the router instantiates: the per-port VC
/// arbiters (`vcs_per_port` wide) and the 5-port global arbiters, plus
/// the full supported range 1..=8 for robustness against config sweeps.
pub fn prove_arbiter(cfg: &NocConfig, diags: &mut Vec<Diagnostic>) -> ConeProof {
    let mut widths: Vec<u8> = (1..=8).collect();
    for w in [cfg.vcs_per_port, Direction::COUNT as u8] {
        if !widths.contains(&w) {
            widths.push(w);
        }
    }
    let mut cases = 0u64;
    let mut violations = 0u64;
    for &w in &widths {
        for ptr in 0..w {
            // Reach pointer state `ptr`: granting bit (ptr-1) mod w parks
            // the rotating priority exactly there.
            let mut arb = RoundRobin::new(w);
            if ptr != 0 {
                arb.arbitrate(1u64 << (ptr - 1));
            }
            for req in 0..(1u64 << w) {
                cases += 1;
                let grant = arb.peek(req);
                let check = check_arbiter_wires(req, grant);
                if !check.silent() {
                    violations += 1;
                    if violations <= 5 {
                        diags.push(violation(
                            "NL201",
                            format!(
                                "arbiter width {w} pointer {ptr} req {req:#b} grants \
                                 {grant:#b}: {check:?}"
                            ),
                        ));
                    }
                }
            }
        }
    }
    ConeProof {
        cone: "arbiter".into(),
        cases,
        violations,
    }
}

/// Proves every fault-free route silent under invariances 1/2/3 and
/// delivered in exactly the Manhattan distance, for one algorithm.
pub fn prove_routing(
    cfg: &NocConfig,
    alg: RoutingAlgorithm,
    diags: &mut Vec<Diagnostic>,
) -> ConeProof {
    let mesh = cfg.mesh;
    let (w, h) = (mesh.width(), mesh.height());
    let mut cases = 0u64;
    let mut violations = 0u64;
    let mut fail = |code, msg: String| {
        violations += 1;
        if violations <= 5 {
            diags.push(violation(code, msg));
        }
    };
    for sx in 0..w {
        for sy in 0..h {
            for dx in 0..w {
                for dy in 0..h {
                    let dest = Coord::new(dx, dy);
                    let mut cur = Coord::new(sx, sy);
                    let mut in_port = Direction::Local;
                    let mut hops = 0u8;
                    loop {
                        cases += 1;
                        let out = route(alg, cur, dest);
                        // Invariance 2: the encoding names a live port.
                        if Direction::from_bits(out.index() as u64) != Some(out)
                            || !mesh.port_live(mesh.node(cur), out)
                        {
                            fail(
                                "NL211",
                                format!("{alg:?}: dead/invalid RC output {out} at {cur}→{dest}"),
                            );
                            break;
                        }
                        // Invariance 1: the turn is legal for the port the
                        // flit physically arrived on.
                        if !turn_legal(alg, in_port, out) {
                            fail(
                                "NL212",
                                format!("{alg:?}: illegal turn {in_port}→{out} at {cur}→{dest}"),
                            );
                        }
                        // Invariance 3: minimal progress.
                        if !productive(mesh, cur, dest, out) {
                            fail(
                                "NL213",
                                format!("{alg:?}: unproductive hop {out} at {cur}→{dest}"),
                            );
                            break;
                        }
                        if out == Direction::Local {
                            break;
                        }
                        match cur.step(out, w, h) {
                            Some(next) => cur = next,
                            None => {
                                fail("NL211", format!("{alg:?}: walked off-mesh at {cur}"));
                                break;
                            }
                        }
                        in_port = out.opposite();
                        hops += 1;
                        if hops > w + h {
                            fail(
                                "NL214",
                                format!("{alg:?}: {sx},{sy}→{dx},{dy} did not converge"),
                            );
                            break;
                        }
                    }
                    if hops != Coord::new(sx, sy).manhattan(dest) as u8 {
                        fail(
                            "NL214",
                            format!("{alg:?}: {sx},{sy}→{dx},{dy} took {hops} hops (non-minimal)"),
                        );
                    }
                }
            }
        }
    }
    ConeProof {
        cone: format!("routing-{alg:?}").to_lowercase(),
        cases,
        violations,
    }
}

/// Proves invariance 17 *equivalent* to the legal-event model over the
/// full `(state, events, speculative)` input space: silent on every legal
/// combination, firing on every illegal one.
pub fn prove_vc_state(diags: &mut Vec<Diagnostic>) -> ConeProof {
    let mut cases = 0u64;
    let mut violations = 0u64;
    for speculative in [false, true] {
        for state in 0u64..4 {
            for evs in 0u8..8 {
                cases += 1;
                let (rc, va, sa) = (evs & 1 != 0, evs & 2 != 0, evs & 4 != 0);
                // The microarchitectural event model: RC completes only
                // from ROUTING(1), VA only from VA_PENDING(2), a switch
                // grant lands only on ACTIVE(3) — or VA_PENDING under the
                // speculative pipeline of Section 4.4.
                let legal = (!rc || state == 1)
                    && (!va || state == 2)
                    && (!sa || state == 3 || (speculative && state == 2));
                let fires = vc_order_violated(state, rc, va, sa, speculative);
                if fires == legal {
                    violations += 1;
                    diags.push(violation(
                        "NL221",
                        format!(
                            "inv17 {} on state={state} rc={rc} va={va} sa={sa} \
                             speculative={speculative}",
                            if fires {
                                "fires on a legal input"
                            } else {
                                "misses an illegal input"
                            }
                        ),
                    ));
                }
            }
        }
    }
    ConeProof {
        cone: "vc-state".into(),
        cases,
        violations,
    }
}

/// Runs all provers for one configuration (both routing algorithms are
/// proved regardless of which one `cfg` selects).
pub fn prove_all(cfg: &NocConfig) -> (Vec<Diagnostic>, Vec<ConeProof>) {
    let mut diags = Vec::new();
    let proofs = vec![
        prove_arbiter(cfg, &mut diags),
        prove_routing(cfg, RoutingAlgorithm::XY, &mut diags),
        prove_routing(cfg, RoutingAlgorithm::WestFirst, &mut diags),
        prove_vc_state(&mut diags),
    ];
    (diags, proofs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cones_prove_clean_on_baseline() {
        let cfg = NocConfig::paper_baseline();
        let (diags, proofs) = prove_all(&cfg);
        assert!(diags.is_empty(), "{diags:#?}");
        for p in &proofs {
            assert_eq!(p.violations, 0, "{p:?}");
            assert!(p.cases > 0, "{p:?}");
        }
    }

    #[test]
    fn arbiter_cone_counts_full_input_space() {
        let cfg = NocConfig::paper_baseline();
        let mut diags = Vec::new();
        let p = prove_arbiter(&cfg, &mut diags);
        // Widths 1..=8 (4 and 5 already included): sum w·2^w.
        let expect: u64 = (1..=8u32).map(|w| w as u64 * (1u64 << w)).sum();
        assert_eq!(p.cases, expect);
        assert!(diags.is_empty());
    }

    #[test]
    fn vc_state_cone_is_an_equivalence_proof() {
        let mut diags = Vec::new();
        let p = prove_vc_state(&mut diags);
        assert_eq!(p.cases, 64);
        assert_eq!(p.violations, 0, "{diags:#?}");
    }

    #[test]
    fn routing_cone_walks_every_pair() {
        let cfg = NocConfig::small_test();
        let mut diags = Vec::new();
        let p = prove_routing(&cfg, RoutingAlgorithm::XY, &mut diags);
        // ≥ one case per (src, dest) pair, including src == dest ejections.
        assert!(p.cases >= 16 * 16, "{}", p.cases);
        assert_eq!(p.violations, 0);
    }
}
