//! **noc-lint** — static verification of the NoCAlert checker array.
//!
//! The dynamic side of this repository demonstrates the paper's claims by
//! *simulation*: golden-run campaigns inject faults and measure detection.
//! This crate is the static side — it analyses the machine-readable models
//! the runtime already exposes and proves, without simulating a single
//! cycle, that the checker deployment is structurally sound:
//!
//! 1. [`coverage`] — every live wire bit of the configured mesh is
//!    constrained by at least one enabled checker (no blind spots), and
//!    the per-checker `observes`/`constrains` metadata is hygienic.
//! 2. [`prove`] — for the small combinational cones (arbiters, routing
//!    function, VC-state transitions) the checker invariants are proved by
//!    exhaustive input enumeration, over the *same* predicate functions
//!    the runtime checkers execute.
//! 3. [`detect`] — static fault detectability ("static ATPG"): for every
//!    containment-covered fault site, every reachable local state and
//!    every fault model, prove the fault is *detected* by a checker within
//!    a bounded number of steps or *provably masked* — and that no
//!    checker in the expected cohort is semantically dead.
//! 4. [`mc`] — explicit-state model checking of the recovery plane: the
//!    escalation ladder × ARQ product space, explored exhaustively under
//!    an adversarial environment, executing the *same* transition code
//!    the simulator runs.
//! 5. [`lint`] — source-level repo lints: no abort points in hot-path
//!    crates outside tests, and the hand-maintained signal catalogues stay
//!    consistent with the compiled `SignalKind` enum.
//!
//! The `noc-lint` binary drives all five and renders a human report or a
//! stable JSON document (`--json`); CI treats any error-level diagnostic
//! as a failure. The heavier passes fan out across `--jobs` worker
//! threads with deterministic (byte-identical) output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod detect;
pub mod diag;
mod exec;
pub mod lint;
pub mod mc;
pub mod prove;

pub use coverage::{analyze, site_covered, CheckerModel, CoverageStats};
pub use detect::{detect_all, DetectStats};
pub use diag::{Diagnostic, Pass, Severity};
pub use lint::{run_lint, LintStats};
pub use mc::{model_check, McStats};
pub use prove::{prove_all, ConeProof};

use noc_types::config::NocConfig;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Version of the JSON report layout emitted by `--json` (and pinned by
/// the committed snapshot). Bumped whenever a field is added, removed or
/// changes meaning:
///
/// * 1 — coverage / proofs / lint.
/// * 2 — `schema_version` itself, the `detect` (static detectability)
///   and `model` (recovery-plane model checking) passes, `--jobs`.
pub const SCHEMA_VERSION: u32 = 2;

/// The canonical configuration the acceptance criteria pin: the paper's
/// 8×8 mesh with 2 VCs per port (the smallest point of the paper's 2–8 VC
/// sweep, and the configuration the committed JSON snapshot freezes).
pub fn canonical_config() -> NocConfig {
    NocConfig {
        vcs_per_port: 2,
        ..NocConfig::paper_baseline()
    }
}

/// Compact description of the analysed configuration (part of the report).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConfigSummary {
    /// Mesh dimensions as `WxH`.
    pub mesh: String,
    /// VCs per input port.
    pub vcs_per_port: u8,
    /// Buffer policy (`Atomic`/`NonAtomic`).
    pub buffer_policy: String,
    /// Routing algorithm the config selects (the prover covers both).
    pub routing: String,
    /// Speculative pipeline flag.
    pub speculative: bool,
}

impl ConfigSummary {
    fn of(cfg: &NocConfig) -> ConfigSummary {
        ConfigSummary {
            mesh: format!("{}x{}", cfg.mesh.width(), cfg.mesh.height()),
            vcs_per_port: cfg.vcs_per_port,
            buffer_policy: format!("{:?}", cfg.buffer_policy),
            routing: format!("{:?}", cfg.routing),
            speculative: cfg.speculative,
        }
    }
}

/// Diagnostic counts by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct SeverityCounts {
    /// Informational notes.
    pub info: usize,
    /// Warnings (non-gating).
    pub warning: usize,
    /// Errors (gating: `noc-lint` exits non-zero).
    pub error: usize,
}

/// Everything one `noc-lint` invocation produced.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The analysed configuration.
    pub config: ConfigSummary,
    /// Pass-1 statistics (present unless the pass was skipped).
    pub coverage: Option<CoverageStats>,
    /// Pass-2 proofs (empty if the pass was skipped).
    pub proofs: Vec<ConeProof>,
    /// Pass-3 statistics (present unless the pass was skipped).
    pub detect: Option<DetectStats>,
    /// Pass-4 statistics (present unless the pass was skipped).
    pub model: Option<McStats>,
    /// Pass-5 statistics (present unless the pass was skipped).
    pub lint: Option<LintStats>,
    /// Diagnostic counts by severity.
    pub counts: SeverityCounts,
    /// All diagnostics, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

/// Which passes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassSelection {
    /// Run pass 1 (coverage).
    pub coverage: bool,
    /// Run pass 2 (prove).
    pub prove: bool,
    /// Run pass 3 (static fault detectability).
    pub detect: bool,
    /// Run pass 4 (recovery-plane model checking).
    pub model: bool,
    /// Run pass 5 (lint).
    pub lint: bool,
}

impl Default for PassSelection {
    fn default() -> PassSelection {
        PassSelection {
            coverage: true,
            prove: true,
            detect: true,
            model: true,
            lint: true,
        }
    }
}

impl Report {
    /// True when no error-level diagnostic was produced.
    pub fn clean(&self) -> bool {
        self.counts.error == 0
    }

    /// The stable subset of the report the snapshot test pins: config,
    /// coverage statistics, proofs and the error count. Volatile fields
    /// (scanned-file counts, info/warning diagnostics whose line numbers
    /// move with every edit) are excluded so the snapshot only changes
    /// when the *verified claims* change.
    pub fn snapshot(&self) -> serde_json::Value {
        use serde::Serialize as _;
        use serde_json::Value;
        let errors: Vec<String> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(ToString::to_string)
            .collect();
        // The detectability aggregates are pinned, but the per-site table
        // (thousands of entries whose only churn is volume) is not — like
        // the lint's file counts, it is `--json`-only.
        let detect = match self.detect.to_value() {
            Value::Object(pairs) => {
                Value::Object(pairs.into_iter().filter(|(k, _)| k != "per_site").collect())
            }
            v => v,
        };
        Value::Object(vec![
            (
                "schema_version".into(),
                Value::U64(self.schema_version as u64),
            ),
            ("config".into(), self.config.to_value()),
            ("coverage".into(), self.coverage.to_value()),
            ("proofs".into(), self.proofs.to_value()),
            ("detect".into(), detect),
            ("model".into(), self.model.to_value()),
            ("errors".into(), Value::U64(self.counts.error as u64)),
            ("error_diagnostics".into(), errors.to_value()),
        ])
    }
}

/// Runs the selected passes and assembles the report.
///
/// `jobs` bounds the worker threads the heavier passes (`prove`,
/// `detect`) fan out across; the output is byte-identical for every
/// value. When `timings` is given, each executed pass appends its
/// wall-clock duration (rendered by the binary on stderr so stdout stays
/// identical across `--jobs` settings).
pub fn run(
    cfg: &NocConfig,
    root: &Path,
    allowlist: &Path,
    passes: PassSelection,
    jobs: usize,
    mut timings: Option<&mut Vec<(&'static str, Duration)>>,
) -> Report {
    let mut diagnostics = Vec::new();
    let timed = |name: &'static str, t0: Instant, timings: &mut Option<&mut Vec<_>>| {
        if let Some(v) = timings.as_deref_mut() {
            v.push((name, t0.elapsed()));
        }
    };
    let coverage = if passes.coverage {
        let t0 = Instant::now();
        let a = coverage::analyze(cfg, &CheckerModel::from_table1());
        diagnostics.extend(a.diagnostics);
        timed("coverage", t0, &mut timings);
        Some(a.stats)
    } else {
        None
    };
    let proofs = if passes.prove {
        let t0 = Instant::now();
        let (d, p) = prove::prove_all(cfg, jobs);
        diagnostics.extend(d);
        timed("prove", t0, &mut timings);
        p
    } else {
        Vec::new()
    };
    let detect = if passes.detect {
        let t0 = Instant::now();
        let (s, d) = detect::detect_all(cfg, jobs);
        diagnostics.extend(d);
        timed("detect", t0, &mut timings);
        Some(s)
    } else {
        None
    };
    let model = if passes.model {
        let t0 = Instant::now();
        let r = mc::model_check(
            &noc_sim::ArqConfig::default_policy(),
            &noc_sim::RecoveryPolicy::default_policy(),
        );
        diagnostics.extend(r.diagnostics);
        timed("model", t0, &mut timings);
        Some(r.stats)
    } else {
        None
    };
    let lint = if passes.lint {
        let t0 = Instant::now();
        let (d, s) = lint::run_lint(root, allowlist);
        diagnostics.extend(d);
        timed("lint", t0, &mut timings);
        Some(s)
    } else {
        None
    };
    let mut counts = SeverityCounts::default();
    for d in &diagnostics {
        match d.severity {
            Severity::Info => counts.info += 1,
            Severity::Warning => counts.warning += 1,
            Severity::Error => counts.error += 1,
        }
    }
    Report {
        schema_version: SCHEMA_VERSION,
        config: ConfigSummary::of(cfg),
        coverage,
        proofs,
        detect,
        model,
        lint,
        counts,
        diagnostics,
    }
}

/// Locates the repository root by walking upward from `start` until a
/// directory containing the signal catalogue is found.
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("crates/noc-types/src/site.rs").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_config_is_8x8_2vc_and_valid() {
        let cfg = canonical_config();
        assert_eq!(cfg.mesh.len(), 64);
        assert_eq!(cfg.vcs_per_port, 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn coverage_only_run_skips_other_passes() {
        let cfg = NocConfig::small_test();
        let r = run(
            &cfg,
            Path::new("/nonexistent"),
            Path::new("/nonexistent/noc-lint.allow"),
            PassSelection {
                coverage: true,
                prove: false,
                detect: false,
                model: false,
                lint: false,
            },
            1,
            None,
        );
        assert!(r.coverage.is_some());
        assert!(r.proofs.is_empty());
        assert!(r.detect.is_none());
        assert!(r.model.is_none());
        assert!(r.lint.is_none());
        assert!(r.clean(), "{:#?}", r.diagnostics);
        assert_eq!(r.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn snapshot_excludes_volatile_fields() {
        let cfg = NocConfig::small_test();
        let r = run(
            &cfg,
            Path::new("/nonexistent"),
            Path::new("/nonexistent/noc-lint.allow"),
            PassSelection::default(),
            1,
            None,
        );
        let s = serde_json::to_string(&r.snapshot()).unwrap_or_default();
        assert!(s.contains("\"config\""));
        assert!(s.contains("\"schema_version\""));
        assert!(!s.contains("files_scanned"), "{s}");
        // Quoted: `min_constrainers_per_site` legitimately contains the
        // substring; only the per-site *table key* must be absent.
        assert!(!s.contains("\"per_site\""), "{s}");
    }

    #[test]
    fn run_records_per_pass_timings() {
        let cfg = NocConfig::small_test();
        let mut timings = Vec::new();
        let r = run(
            &cfg,
            Path::new("/nonexistent"),
            Path::new("/nonexistent/noc-lint.allow"),
            PassSelection {
                coverage: true,
                prove: false,
                detect: true,
                model: true,
                lint: false,
            },
            2,
            Some(&mut timings),
        );
        assert!(r.detect.is_some());
        assert!(r.model.is_some());
        let names: Vec<&str> = timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["coverage", "detect", "model"]);
    }
}
