//! Rectangular fault regions (DESIGN.md §13).
//!
//! The containment layer aggregates dead links and quarantined routers
//! into axis-aligned rectangles, following the FASHION convention
//! (arXiv:1702.02313): a rectangle is the bounding box of a connected
//! cluster of faulty routers, and every router inside it — healthy or
//! not — is taken out of service so the region boundary stays convex.
//! Convex boundaries are what lets a single spanning-tree turn model
//! route around *any* set of regions deadlock-free.
//!
//! This crate only holds the geometry; the map that forms regions and
//! derives routing tables lives in `noc-sim::fault_region`.

use crate::geometry::Coord;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangular fault region, bounds inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultRect {
    /// West edge (minimum x), inclusive.
    pub x0: u8,
    /// South edge (minimum y), inclusive.
    pub y0: u8,
    /// East edge (maximum x), inclusive.
    pub x1: u8,
    /// North edge (maximum y), inclusive.
    pub y1: u8,
}

impl FaultRect {
    /// A single-router region.
    pub fn point(c: Coord) -> FaultRect {
        FaultRect {
            x0: c.x,
            y0: c.y,
            x1: c.x,
            y1: c.y,
        }
    }

    /// Whether the region contains `c` (bounds inclusive).
    pub fn contains(&self, c: Coord) -> bool {
        self.x0 <= c.x && c.x <= self.x1 && self.y0 <= c.y && c.y <= self.y1
    }

    /// Grows the region to cover `c`.
    pub fn absorb(&mut self, c: Coord) {
        self.x0 = self.x0.min(c.x);
        self.y0 = self.y0.min(c.y);
        self.x1 = self.x1.max(c.x);
        self.y1 = self.y1.max(c.y);
    }

    /// Routers covered by the region.
    pub fn area(&self) -> u32 {
        let w = (self.x1 - self.x0) as u32 + 1;
        let h = (self.y1 - self.y0) as u32 + 1;
        w * h
    }

    /// Whether two regions touch or overlap when each is inflated by one
    /// router in every direction — the criterion for merging clusters so
    /// adjacent (even diagonally adjacent) regions coalesce into one
    /// rectangle instead of leaving an unroutable one-router gap.
    pub fn adjacent(&self, other: &FaultRect) -> bool {
        let x_gap = self
            .x0
            .saturating_sub(other.x1)
            .max(other.x0.saturating_sub(self.x1));
        let y_gap = self
            .y0
            .saturating_sub(other.y1)
            .max(other.y0.saturating_sub(self.y1));
        x_gap <= 1 && y_gap <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_area() {
        let r = FaultRect {
            x0: 2,
            y0: 3,
            x1: 4,
            y1: 5,
        };
        assert!(r.contains(Coord::new(2, 3)));
        assert!(r.contains(Coord::new(4, 5)));
        assert!(r.contains(Coord::new(3, 4)));
        assert!(!r.contains(Coord::new(1, 4)));
        assert!(!r.contains(Coord::new(3, 6)));
        assert_eq!(r.area(), 9);
        assert_eq!(FaultRect::point(Coord::new(7, 0)).area(), 1);
    }

    #[test]
    fn absorb_grows_bounds() {
        let mut r = FaultRect::point(Coord::new(3, 3));
        r.absorb(Coord::new(5, 1));
        assert_eq!(
            r,
            FaultRect {
                x0: 3,
                y0: 1,
                x1: 5,
                y1: 3
            }
        );
        assert!(r.contains(Coord::new(4, 2)));
    }

    #[test]
    fn adjacency_includes_diagonal_touch() {
        let a = FaultRect::point(Coord::new(2, 2));
        let diag = FaultRect::point(Coord::new(3, 3));
        let gap = FaultRect::point(Coord::new(4, 4));
        assert!(a.adjacent(&diag), "8-neighbourhood merges");
        assert!(!a.adjacent(&gap), "two-apart stays separate");
        assert!(a.adjacent(&a));
    }
}
