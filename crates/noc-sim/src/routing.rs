//! Routing Computation algorithms and the turn rules they induce.
//!
//! Two algorithms are provided, matching Section 5.1 (deterministic XY,
//! the evaluation baseline) and Section 4.4 (an adaptive turn-model
//! variant, demonstrating how the invariance set adapts to the routing
//! function):
//!
//! * [`RoutingAlgorithm::XY`] — dimension-order: all X hops first, then Y.
//!   Forbidden turns: any Y→X turn (invariance 1).
//! * [`RoutingAlgorithm::WestFirst`] — all westward hops first; afterwards
//!   the packet may never turn (back) to the West. Forbidden turns: N→W and
//!   S→W.
//!
//! The *same* functions are used by the router's RC units and by the
//! NoCAlert checkers (invariances 1–3): the checker re-derives legality
//! from the algorithm definition, exactly as the paper derives assertions
//! from "each functional rule in the algorithm".

use noc_types::config::RoutingAlgorithm;
use noc_types::geometry::{Coord, Direction, Mesh};

/// Computes the output direction for a header at `cur` destined to `dest`.
///
/// Both algorithms implemented here are **minimal**: the returned direction
/// always decreases the Manhattan distance, or is [`Direction::Local`] when
/// `cur == dest`. This is the property invariance 3 asserts.
pub fn route(alg: RoutingAlgorithm, cur: Coord, dest: Coord) -> Direction {
    match alg {
        RoutingAlgorithm::XY => {
            if dest.x > cur.x {
                Direction::East
            } else if dest.x < cur.x {
                Direction::West
            } else if dest.y > cur.y {
                Direction::North
            } else if dest.y < cur.y {
                Direction::South
            } else {
                Direction::Local
            }
        }
        RoutingAlgorithm::WestFirst => {
            if dest.x < cur.x {
                Direction::West
            } else if dest.x > cur.x {
                // Deterministic preference among the adaptive options:
                // East before the Y directions.
                Direction::East
            } else if dest.y > cur.y {
                Direction::North
            } else if dest.y < cur.y {
                Direction::South
            } else {
                Direction::Local
            }
        }
        // On a healthy mesh the fault-region map installs no tables and
        // the RC unit falls through to this function: identical to XY by
        // definition (DESIGN.md §13). With regions present the router
        // consults its per-destination up*/down* tables *before* calling
        // here, so this arm only ever runs region-free.
        RoutingAlgorithm::FaultRegion => route(RoutingAlgorithm::XY, cur, dest),
    }
}

/// Degraded-mode routing around quarantined output ports (DESIGN.md §11).
///
/// When the algorithm's preferred direction is fenced (`avoid`), the other
/// *productive* direction is taken instead, in a fixed deterministic
/// priority order (E, W, N, S). Every hop still strictly decreases the
/// Manhattan distance, so degraded routes cannot livelock; they may,
/// however, violate the baseline turn model — the recovery harness
/// therefore relaxes the turn-legality invariances once a router enters
/// degraded mode, and the watchdog backs the residual deadlock risk.
pub fn route_avoiding(
    alg: RoutingAlgorithm,
    mesh: Mesh,
    cur: Coord,
    dest: Coord,
    avoid: &[bool],
) -> Direction {
    let preferred = route(alg, cur, dest);
    let fenced = |d: Direction| avoid.get(d.index()).copied().unwrap_or(false);
    if !fenced(preferred) {
        return preferred;
    }
    for d in [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ] {
        if d != preferred && !fenced(d) && productive(mesh, cur, dest, d) {
            return d;
        }
    }
    // Every productive direction is fenced. A fenced port is quarantined
    // hardware — re-selecting it would park the worm against the fence
    // until the watchdog fires — so take a *non-minimal* unfenced detour
    // instead: the neighbouring router's fence set differs, giving the
    // packet a live path around the quarantine. North-first keeps the
    // choice deterministic.
    for d in [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ] {
        if !fenced(d) && cur.step(d, mesh.width(), mesh.height()).is_some() {
            return d;
        }
    }
    // Every on-mesh direction is fenced: emit the preferred one anyway
    // (the packet blocks and the watchdog reports the loss of liveness —
    // the site is beyond VC/port-granular containment).
    preferred
}

/// Whether a turn from input port `in_port` to output direction `out` is
/// permitted by the routing algorithm's turn model (invariance 1).
///
/// `in_port` is the port the flit *arrived on*: a flit arriving on the
/// North input port is travelling southward. Injection (`in_port ==
/// Local`) may start in any direction; ejection (`out == Local`) is always
/// a legal "turn".
pub fn turn_legal(alg: RoutingAlgorithm, in_port: Direction, out: Direction) -> bool {
    if out == Direction::Local || in_port == Direction::Local {
        return true;
    }
    // A u-turn (exiting back through the arrival link) is never legal.
    if out == in_port {
        return false;
    }
    match alg {
        RoutingAlgorithm::XY => {
            // Travelling along Y (arrived on N or S) may not turn to X.
            !(in_port.is_y() && out.is_x())
        }
        RoutingAlgorithm::WestFirst => {
            // Once not travelling west, never turn to West. A westbound
            // flit arrives on the East port.
            !(out == Direction::West && in_port != Direction::East)
        }
        // The static turn model of up*/down* routing is permissive: the
        // real forbidden transition (down→up in the spanning-tree rank
        // order) depends on the live region map, which the per-checker
        // wiring cannot see. The u-turn prohibition above is the
        // region-independent residue — the full property is proven per
        // region set by `noc-lint` (NL215/NL216) instead.
        RoutingAlgorithm::FaultRegion => true,
    }
}

/// Whether `out` takes a flit at `cur` strictly closer to `dest`
/// (invariance 3: minimal progress). `Local` is productive iff arrived.
pub fn productive(mesh: Mesh, cur: Coord, dest: Coord, out: Direction) -> bool {
    if out == Direction::Local {
        return cur == dest;
    }
    match cur.step(out, mesh.width(), mesh.height()) {
        Some(next) => next.manhattan(dest) < cur.manhattan(dest),
        None => false, // off-mesh is never productive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MESH: fn() -> Mesh = || Mesh::new(8, 8);

    #[test]
    fn xy_routes_x_first() {
        let alg = RoutingAlgorithm::XY;
        assert_eq!(
            route(alg, Coord::new(1, 1), Coord::new(4, 5)),
            Direction::East
        );
        assert_eq!(
            route(alg, Coord::new(4, 1), Coord::new(4, 5)),
            Direction::North
        );
        assert_eq!(
            route(alg, Coord::new(4, 5), Coord::new(4, 5)),
            Direction::Local
        );
        assert_eq!(
            route(alg, Coord::new(4, 5), Coord::new(2, 5)),
            Direction::West
        );
        assert_eq!(
            route(alg, Coord::new(4, 5), Coord::new(4, 2)),
            Direction::South
        );
    }

    #[test]
    fn west_first_goes_west_first() {
        let alg = RoutingAlgorithm::WestFirst;
        assert_eq!(
            route(alg, Coord::new(5, 3), Coord::new(1, 7)),
            Direction::West
        );
        assert_eq!(
            route(alg, Coord::new(1, 3), Coord::new(1, 7)),
            Direction::North
        );
    }

    #[test]
    fn xy_turn_rules_match_paper_example() {
        // Figure 2(a): a packet arriving from the Y dimension (N or S input
        // ports) may not turn into the X dimension (E or W outputs).
        let alg = RoutingAlgorithm::XY;
        assert!(!turn_legal(alg, Direction::North, Direction::East));
        assert!(!turn_legal(alg, Direction::South, Direction::West));
        assert!(turn_legal(alg, Direction::East, Direction::North));
        assert!(turn_legal(alg, Direction::West, Direction::South));
        assert!(turn_legal(alg, Direction::North, Direction::South));
        assert!(turn_legal(alg, Direction::Local, Direction::East));
        assert!(turn_legal(alg, Direction::North, Direction::Local));
    }

    #[test]
    fn u_turns_are_illegal() {
        for alg in RoutingAlgorithm::ALL {
            for d in Direction::ALL {
                if d.is_cardinal() {
                    assert!(!turn_legal(alg, d, d), "{alg:?} {d} u-turn");
                }
            }
        }
    }

    #[test]
    fn west_first_turn_rules() {
        let alg = RoutingAlgorithm::WestFirst;
        assert!(!turn_legal(alg, Direction::North, Direction::West));
        assert!(!turn_legal(alg, Direction::South, Direction::West));
        assert!(turn_legal(alg, Direction::East, Direction::West));
        assert!(turn_legal(alg, Direction::Local, Direction::West));
        assert!(turn_legal(alg, Direction::North, Direction::East));
    }

    #[test]
    fn route_avoiding_detours_productively() {
        let mesh = MESH();
        let alg = RoutingAlgorithm::XY;
        let mut avoid = [false; 5];
        // No fence: identical to the baseline algorithm.
        assert_eq!(
            route_avoiding(alg, mesh, Coord::new(1, 1), Coord::new(4, 5), &avoid),
            Direction::East
        );
        // East fenced with progress available in Y: detour North.
        avoid[Direction::East.index()] = true;
        assert_eq!(
            route_avoiding(alg, mesh, Coord::new(1, 1), Coord::new(4, 5), &avoid),
            Direction::North
        );
        // Destination straight East and East fenced: no productive
        // alternative exists, but the fenced port must NOT be re-selected
        // while an unfenced detour exists — the non-minimal North escape
        // is taken instead (the old fallback parked the worm against the
        // fence; this pins the fix).
        assert_eq!(
            route_avoiding(alg, mesh, Coord::new(1, 1), Coord::new(4, 1), &avoid),
            Direction::North
        );
    }

    #[test]
    fn route_avoiding_never_reselects_a_fenced_port_with_an_escape_left() {
        let mesh = MESH();
        // Fence every direction except South: the only unfenced direction
        // is non-minimal for an eastbound packet, and it must still win
        // over the fenced preferred port.
        let mut avoid = [false; 5];
        for d in [Direction::East, Direction::West, Direction::North] {
            avoid[d.index()] = true;
        }
        assert_eq!(
            route_avoiding(
                RoutingAlgorithm::XY,
                mesh,
                Coord::new(2, 4),
                Coord::new(6, 4),
                &avoid
            ),
            Direction::South
        );
        // All four cardinals fenced: only now may the preferred (fenced)
        // direction come back — the site is beyond port-granular
        // containment and the watchdog owns it.
        avoid[Direction::South.index()] = true;
        assert_eq!(
            route_avoiding(
                RoutingAlgorithm::XY,
                mesh,
                Coord::new(2, 4),
                Coord::new(6, 4),
                &avoid
            ),
            Direction::East
        );
    }

    #[test]
    fn route_avoiding_never_emits_the_single_fenced_port() {
        let mesh = MESH();
        let mut avoid = [false; 5];
        avoid[Direction::East.index()] = true;
        for sx in 0u8..8 {
            for sy in 0u8..8 {
                for dx in 0u8..8 {
                    for dy in 0u8..8 {
                        let cur = Coord::new(sx, sy);
                        let dest = Coord::new(dx, dy);
                        let out = route_avoiding(RoutingAlgorithm::XY, mesh, cur, dest, &avoid);
                        // With a single fence an unfenced on-mesh escape
                        // always exists, so the fenced port never comes
                        // back out.
                        assert_ne!(out, Direction::East, "fenced port re-selected at {cur}");
                        // And whenever an unfenced *productive* direction
                        // exists, the detour stays minimal.
                        let minimal_exists = Direction::ALL
                            .iter()
                            .any(|&d| d != Direction::East && productive(mesh, cur, dest, d));
                        if minimal_exists {
                            assert!(
                                productive(mesh, cur, dest, out),
                                "unproductive detour {out} at {cur} toward {dest}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fault_region_is_xy_without_regions() {
        for sx in 0u8..8 {
            for sy in 0u8..8 {
                for dx in 0u8..8 {
                    for dy in 0u8..8 {
                        let cur = Coord::new(sx, sy);
                        let dest = Coord::new(dx, dy);
                        assert_eq!(
                            route(RoutingAlgorithm::FaultRegion, cur, dest),
                            route(RoutingAlgorithm::XY, cur, dest),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn productive_detects_progress() {
        let mesh = MESH();
        let cur = Coord::new(3, 3);
        let dest = Coord::new(5, 3);
        assert!(productive(mesh, cur, dest, Direction::East));
        assert!(!productive(mesh, cur, dest, Direction::West));
        assert!(!productive(mesh, cur, dest, Direction::North));
        assert!(!productive(mesh, cur, dest, Direction::Local));
        assert!(productive(mesh, dest, dest, Direction::Local));
    }

    // Exhaustive over every (algorithm, source, destination) pair on the
    // 8x8 mesh — strictly stronger than the sampled property test this
    // replaces (the environment is offline, so no proptest).
    #[test]
    fn prop_routes_are_minimal_and_legal() {
        // FaultRegion is included: region-free it must be bit-identical
        // to XY, which this walk (minimality, legality, convergence)
        // subsumes.
        for alg in RoutingAlgorithm::ALL {
            for sx in 0u8..8 {
                for sy in 0u8..8 {
                    for dx in 0u8..8 {
                        for dy in 0u8..8 {
                            let mesh = MESH();
                            let mut cur = Coord::new(sx, sy);
                            let dest = Coord::new(dx, dy);
                            let mut in_port = Direction::Local;
                            let mut hops = 0;
                            loop {
                                let out = route(alg, cur, dest);
                                assert!(
                                    productive(mesh, cur, dest, out),
                                    "unproductive hop {out} at {cur} toward {dest}"
                                );
                                assert!(
                                    turn_legal(alg, in_port, out),
                                    "illegal turn {in_port}->{out} at {cur}"
                                );
                                if out == Direction::Local {
                                    break;
                                }
                                cur = cur.step(out, 8, 8).unwrap();
                                in_port = out.opposite();
                                hops += 1;
                                assert!(hops <= 14, "route did not converge");
                            }
                            assert_eq!(cur, dest);
                            assert_eq!(hops, Coord::new(sx, sy).manhattan(dest));
                        }
                    }
                }
            }
        }
    }
}
