//! Pure ARQ decision functions — the transport's control plane as data.
//!
//! Every control decision the NIC-level ARQ makes (DESIGN.md §11) is
//! factored here as a **pure function** over explicit inputs. The
//! simulator's [`crate::transport::Transport`] calls these functions to
//! decide; the model checker (`nocalert-analysis`' `mc` pass) calls the
//! *same* functions to explore the recovery-plane state space. There is no
//! parallel reimplementation to drift: a behaviour change here changes
//! both the simulation and the proof obligation at once, and the
//! `arq_equivalence` test pins the transport to this module against
//! recorded traces.
//!
//! The three decision points:
//!
//! * **Receiver, assembled data packet** — deliver/ack, suppress/re-ack a
//!   duplicate, or NACK a corrupted copy ([`receiver_data_action`]).
//! * **Sender, returned control packet** — the control copy is first
//!   authenticated (keyed per-packet tag + claimed-source check,
//!   [`ControlSignature`]); an authentic ACK completes the message, an
//!   authentic NACK schedules an immediate retransmit, and anything that
//!   fails authentication is ignored ([`sender_control_action`]).
//! * **Sender, expired retransmission timer** — retransmit with
//!   exponential backoff, or give up after the retry budget, recording a
//!   failure only if the message is not known delivered
//!   ([`sender_timeout_action`]).

use crate::transport::ArqConfig;
use noc_types::Cycle;

/// What the receiver does with a fully assembled **data** packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverAction {
    /// First clean arrival: hand to the application, mark the dedup
    /// window, and send an ACK.
    DeliverAndAck,
    /// Late duplicate (a retransmit raced the ACK): suppress the payload
    /// but re-acknowledge so the sender stops.
    SuppressAndReAck,
    /// The copy arrived damaged: NACK to trigger an immediate resend.
    Nack,
}

/// Receiver-side decision for an assembled data packet.
///
/// `already_delivered` is the dedup-window mark for the application
/// message; `corrupted` is the EDC verdict on this wire copy. Note the
/// precedence: a *corrupted duplicate* is still re-ACKed — the payload
/// already reached the application, so identity is all that matters.
#[inline]
pub fn receiver_data_action(already_delivered: bool, corrupted: bool) -> ReceiverAction {
    if already_delivered {
        ReceiverAction::SuppressAndReAck
    } else if corrupted {
        ReceiverAction::Nack
    } else {
        ReceiverAction::DeliverAndAck
    }
}

/// What the data sender does with a returned control packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderControlAction {
    /// Authentic ACK: the message is done; drop the pending entry and
    /// stop the timer. A *corrupted* authentic ACK still completes — its
    /// identity carries the information; real hardware would
    /// checksum-drop it and the next retransmission round would absorb
    /// the loss identically. A *forged* ACK never reaches this arm.
    Complete,
    /// Authentic NACK: the path demonstrably delivers, the copy was just
    /// damaged — expire the timer now and retransmit immediately.
    RetransmitNow,
    /// The control copy failed authentication (bad keyed tag, or the
    /// claimed source is not the pending message's destination): treat it
    /// as if it never arrived. The retransmission timer keeps running, so
    /// a black-holed-then-spoofed message degrades to the plain-loss case
    /// the timeout path already covers.
    Ignore,
}

/// The authenticated identity of an arrived control packet, as computed
/// by the transport before asking for a decision.
///
/// `tag_valid` is the keyed per-packet tag check ([`auth_tag`]); the tag
/// is a function of a NIC-pair secret the on-path routers never hold, so
/// a compromised router can only guess it. `src_valid` is the
/// source-validation check: the control's claimed origin must be the
/// pending data message's destination — an ACK for `A→B` arriving "from"
/// anyone but `B` is spoofed by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlSignature {
    /// True for NACK, false for ACK.
    pub nack: bool,
    /// Keyed tag matched the expected per-packet value.
    pub tag_valid: bool,
    /// Claimed source is the pending message's destination.
    pub src_valid: bool,
}

impl ControlSignature {
    /// An authentic control copy (both checks passed).
    pub fn authentic(nack: bool) -> ControlSignature {
        ControlSignature {
            nack,
            tag_valid: true,
            src_valid: true,
        }
    }
}

/// Sender-side decision for an arrived control packet: authenticate
/// first, then let the control kind pick between completion and
/// immediate retransmission. Spoof-hardened — compare the trusting
/// pre-hardening rule [`sender_control_action_trusting`].
#[inline]
pub fn sender_control_action(sig: ControlSignature) -> SenderControlAction {
    if !sig.tag_valid || !sig.src_valid {
        SenderControlAction::Ignore
    } else if sig.nack {
        SenderControlAction::RetransmitNow
    } else {
        SenderControlAction::Complete
    }
}

/// The **pre-hardening** control rule: trust any control copy that names
/// a pending packet. Kept (test/mutation-gated) as the pinned negative —
/// under an ACK-spoofing adversary this rule completes a message that was
/// never delivered, which the hardened rule and the NL504 model-checking
/// obligation both reject.
#[cfg(any(test, feature = "mutation"))]
#[inline]
pub fn sender_control_action_trusting(nack: bool) -> SenderControlAction {
    if nack {
        SenderControlAction::RetransmitNow
    } else {
        SenderControlAction::Complete
    }
}

/// Keyed per-packet authentication tag for control packets.
///
/// A cheap two-round xorshift-multiply mixer — this models a MAC's
/// *protocol* role (unforgeable without the key), not its cryptographic
/// strength. The secret is shared by the NIC endpoints (derived from the
/// run seed at transport construction) and never held by routers, so an
/// on-path attacker can only guess: its forged tags come from its private
/// RNG and miss with overwhelming probability, while *replayed* genuine
/// controls carry valid tags and are instead absorbed by the pending
/// window (stale-sequence idempotence).
#[inline]
pub fn auth_tag(secret: u64, packet: noc_types::PacketId, nack: bool) -> u64 {
    let mut x = secret ^ packet.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (nack as u64) << 63;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What the data sender does when a retransmission timer expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderTimeoutAction {
    /// Retry budget left: send another wire copy.
    Retransmit {
        /// The attempt counter after this retransmission.
        next_attempts: u32,
        /// Timer distance for the new attempt (exponential backoff,
        /// capped — `ArqConfig::timeout_after(next_attempts)`).
        backoff: Cycle,
    },
    /// Budget exhausted: stop retrying. `record_failure` is set when the
    /// message is not known delivered — a delivered message whose ACKs
    /// all died is simply closed without a failure record (the
    /// exactly-once oracle counts deliveries, not ACK luck).
    GiveUp {
        /// Whether a [`crate::transport::FailureRecord`] must be emitted.
        record_failure: bool,
    },
}

/// Sender-side decision at timer expiry: `attempts` wire copies beyond the
/// first have been sent, `delivered` is the receiver-side dedup mark as
/// visible to the (co-located, in-simulation) transport model.
#[inline]
pub fn sender_timeout_action(
    arq: &ArqConfig,
    attempts: u32,
    delivered: bool,
) -> SenderTimeoutAction {
    if attempts >= arq.max_retries {
        SenderTimeoutAction::GiveUp {
            record_failure: !delivered,
        }
    } else {
        let next_attempts = attempts + 1;
        SenderTimeoutAction::Retransmit {
            next_attempts,
            backoff: arq.timeout_after(next_attempts),
        }
    }
}

/// One logged ARQ decision with the exact inputs it was made from —
/// recorded by the transport when the decision log is enabled, and
/// replayed by the `arq_equivalence` test to pin the simulator to the
/// pure functions above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArqDecision {
    /// A receiver decision on an assembled data packet.
    Data {
        /// Dedup-window mark at decision time.
        already_delivered: bool,
        /// EDC verdict on the wire copy.
        corrupted: bool,
        /// The action taken.
        action: ReceiverAction,
    },
    /// A sender decision on a returned control packet.
    Control {
        /// The authenticated identity the decision was made from.
        sig: ControlSignature,
        /// The action taken.
        action: SenderControlAction,
    },
    /// A sender decision at timer expiry.
    Timeout {
        /// Attempt counter at decision time.
        attempts: u32,
        /// Receiver-side dedup mark at decision time.
        delivered: bool,
        /// The action taken.
        action: SenderTimeoutAction,
        /// Whether a `Retransmit` was actually carried out (injection can
        /// be refused under backpressure; the timer then re-fires with
        /// unchanged state on a later cycle).
        applied: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_precedence_duplicate_beats_corruption() {
        assert_eq!(
            receiver_data_action(true, true),
            ReceiverAction::SuppressAndReAck
        );
        assert_eq!(receiver_data_action(false, true), ReceiverAction::Nack);
        assert_eq!(
            receiver_data_action(false, false),
            ReceiverAction::DeliverAndAck
        );
    }

    #[test]
    fn timeout_gives_up_exactly_at_budget() {
        let arq = ArqConfig::default_policy();
        match sender_timeout_action(&arq, arq.max_retries - 1, false) {
            SenderTimeoutAction::Retransmit {
                next_attempts,
                backoff,
            } => {
                assert_eq!(next_attempts, arq.max_retries);
                assert_eq!(backoff, arq.timeout_after(arq.max_retries));
            }
            other => panic!("expected retransmit, got {other:?}"),
        }
        assert_eq!(
            sender_timeout_action(&arq, arq.max_retries, false),
            SenderTimeoutAction::GiveUp {
                record_failure: true
            }
        );
        assert_eq!(
            sender_timeout_action(&arq, arq.max_retries, true),
            SenderTimeoutAction::GiveUp {
                record_failure: false
            }
        );
    }

    #[test]
    fn authentic_controls_decide_by_kind() {
        assert_eq!(
            sender_control_action(ControlSignature::authentic(false)),
            SenderControlAction::Complete
        );
        assert_eq!(
            sender_control_action(ControlSignature::authentic(true)),
            SenderControlAction::RetransmitNow
        );
    }

    #[test]
    fn spoofed_controls_are_ignored() {
        // A forged tag is ignored regardless of kind or claimed source.
        for nack in [false, true] {
            for src_valid in [false, true] {
                assert_eq!(
                    sender_control_action(ControlSignature {
                        nack,
                        tag_valid: false,
                        src_valid,
                    }),
                    SenderControlAction::Ignore
                );
            }
        }
        // A valid tag from the wrong claimed source is still ignored: a
        // replayed tag re-addressed by an on-path router must not count.
        for nack in [false, true] {
            assert_eq!(
                sender_control_action(ControlSignature {
                    nack,
                    tag_valid: true,
                    src_valid: false,
                }),
                SenderControlAction::Ignore
            );
        }
    }

    #[test]
    fn replayed_authentic_controls_stay_idempotent() {
        // A bit-faithful replay authenticates (same tag, same source) and
        // must therefore produce the same decision as the original — the
        // safety burden for replays sits on the *pending window* (a
        // completed packet has no pending entry, so a stale-sequence
        // replay is dropped before any decision is asked for). The pure
        // layer's contract is only that the repeated decision is
        // idempotent, never a new side effect.
        let first = sender_control_action(ControlSignature::authentic(false));
        let replay = sender_control_action(ControlSignature::authentic(false));
        assert_eq!(first, replay);
        assert_eq!(replay, SenderControlAction::Complete);
    }

    #[test]
    fn forged_tags_from_guessing_do_not_collide() {
        // The attacker holds the packet id but not the secret: guessing
        // with a different key never reproduces the genuine tag.
        let secret = 0x5eed_0f00d;
        for pid in 0..64u64 {
            let genuine = auth_tag(secret, noc_types::PacketId(pid), false);
            for guess_key in 1..=16u64 {
                let forged = auth_tag(secret ^ guess_key, noc_types::PacketId(pid), false);
                assert_ne!(genuine, forged, "pid {pid} guess {guess_key}");
            }
            // The tag also binds the control kind: an ACK tag is not a
            // valid NACK tag for the same packet.
            assert_ne!(genuine, auth_tag(secret, noc_types::PacketId(pid), true));
        }
    }

    /// Pinned negative: the pre-hardening rule trusts an unauthenticated
    /// ACK and completes the message. This is exactly the spoofing hole
    /// the hardened rule closes — the test documents the hole so it can
    /// never silently return (the mutation build of the model checker
    /// turns this same rule into an NL504 counterexample).
    #[test]
    fn trusting_rule_accepts_spoofed_ack_pinned_negative() {
        assert_eq!(
            sender_control_action_trusting(false),
            SenderControlAction::Complete
        );
        // The hardened rule maps the identical (forged) input to Ignore.
        assert_eq!(
            sender_control_action(ControlSignature {
                nack: false,
                tag_valid: false,
                src_valid: true,
            }),
            SenderControlAction::Ignore
        );
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let arq = ArqConfig::default_policy();
        let mut prev = 0;
        for a in 1..=arq.max_retries {
            if let SenderTimeoutAction::Retransmit { backoff, .. } =
                sender_timeout_action(&arq, a - 1, false)
            {
                assert!(backoff >= prev, "backoff must be monotone");
                assert!(backoff <= arq.timeout_after(arq.backoff_cap + 1));
                prev = backoff;
            }
        }
    }
}
