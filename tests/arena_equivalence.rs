//! ISSUE 5 satellite: the campaign arena's reset-reuse path must be
//! indistinguishable from fresh construction.
//!
//! `Campaign::run_spec_in` rewinds a worker's [`golden::CampaignArena`]
//! to the warm snapshot via `clone_from` before every rollout. If any
//! field were missed — stale recovery state, a leftover ARQ window, a
//! dirty detector — a reused arena would diverge from a fresh clone.
//! These tests run every fault class through both paths, deliberately
//! dirtying the shared arena between runs (including with a
//! watchdog-truncated rollout that abandons the arena mid-flight), and
//! require the serialized results to match byte for byte.

use fault::{enumerate_sites, FaultSpec, Watchdog};
use golden::{Campaign, CampaignConfig, RunResult};
use noc_types::NocConfig;

fn campaign() -> Campaign {
    let mut noc = NocConfig::small_test();
    noc.injection_rate = 0.08;
    Campaign::new(CampaignConfig::paper_defaults(noc, 500))
}

fn json(r: &RunResult) -> String {
    serde_json::to_string(r).expect("run result serializes")
}

#[test]
fn reused_arena_matches_fresh_runs_for_every_fault_class() {
    let c = campaign();
    let sites = enumerate_sites(&c.config().noc);
    let at = c.injection_cycle();
    let specs = [
        FaultSpec::transient(sites[3], at),
        FaultSpec::intermittent(sites[97], 50, 10, at),
        FaultSpec::permanent(sites[41], at),
        FaultSpec::stuck_at(sites[59], false, at),
        FaultSpec::stuck_at(sites[23], true, at),
    ];
    let fresh: Vec<String> = specs.iter().map(|&s| json(&c.run_spec(s))).collect();

    let mut arena = c.arena();
    let reused: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            // Dirty the shared arena with an unrelated permanent-fault
            // rollout so the reset actually has something to undo.
            let _ = c.run_spec_in(&mut arena, FaultSpec::permanent(sites[10 + i], at));
            json(&c.run_spec_in(&mut arena, s))
        })
        .collect();
    assert_eq!(fresh, reused);
}

#[test]
fn arena_reuse_after_watchdog_truncation_is_clean() {
    let c = campaign();
    let sites = enumerate_sites(&c.config().noc);
    let at = c.injection_cycle();
    let spec = FaultSpec::transient(sites[5], at);
    let want = json(&c.run_spec(spec));

    // A tight cycle budget terminates the dirtying run mid-flight, leaving
    // worms in buffers and a half-written log in the arena.
    let mut arena = c.arena();
    let tight = Watchdog {
        cycle_budget: 40,
        stall_window: u64::MAX,
    };
    let _ = c.run_spec_watched_in(&mut arena, FaultSpec::permanent(sites[33], at), tight);
    let got = json(&c.run_spec_in(&mut arena, spec));
    assert_eq!(want, got);
}
