//! Aging campaign: survival under an *accumulating* population of
//! permanent faults (DESIGN.md §13).
//!
//! The recovery harness ([`crate::recovery`]) answers "does the system
//! survive one fault?" — every rollout starts from a healthy mesh. This
//! module asks the harder question the fault-region routing subsystem
//! exists for: how much permanent damage can one network absorb while
//! still delivering every application message exactly once, and does it
//! report the end of its life (a true topology partition) honestly
//! instead of hanging?
//!
//! One [`AgingHarness::run`] is a *single* continuous simulation. Each
//! **epoch** introduces one more permanent fault into the already-damaged
//! network, runs a measurement window of live traffic through the closed
//! detection → containment → region-routing → ARQ loop, then settles
//! until the transport is quiescent and emits one all-integer
//! [`EpochReport`] row. The epoch plan is deterministic (a function of
//! the options alone), in two phases:
//!
//! 1. **Organic phase** — stride-sampled containment-covered fault sites
//!    on cardinal input ports, rotating through the hard fault kinds.
//!    With one VC per port, quarantine fences the port, the region map
//!    kills the link, and the fault-region tables re-route around the
//!    growing damage.
//! 2. **Cut phase** — the column-`cut_column` East links are severed one
//!    row per epoch. The final severing splits the mesh: the campaign
//!    must end in [`AgingOutcome::Partitioned`], never a stall.
//!
//! Checker 1 (turn legality) and checker 3 (minimal progress) stay
//! armed: both are region-aware, excusing an RC execution only when its
//! output matches the fault-region table entry (or fence-avoiding route)
//! recorded alongside it — up\*/down\* detours raise nothing while a
//! misroute inside a detour still fires. The per-VC worm-age monitor
//! and the settle watchdog back the deadlock risk.
//!
//! **Exactly-once with orphan accounting.** Once a destination is
//! absorbed into a region or severed into another component, traffic to
//! it is undeliverable *by topology*, not by routing failure. A sender
//! give-up whose endpoints are absorbed or mutually unreachable at
//! settle time is an **orphan** — recorded, but excused from the
//! exactly-once bar. Any other loss, duplicate or unexcused give-up
//! fails the epoch.
//!
//! **Resume.** [`AgingHarness::run`] takes the previously checkpointed
//! rows and re-simulates the prefix deterministically, asserting each
//! recomputed row — including the [`EpochReport::region_digest`] pinning
//! the fault-region routing state — is bit-identical to the stored one.
//! Divergence (a changed binary, a foreign checkpoint) is an error, not
//! a silent fork.

use crate::campaign::jsonl;
use crate::campaign::CampaignError;
use crate::recovery::{containment_covered, DeliveryVerdict};
use fault::Watchdog;
use noc_sim::{ArqConfig, Network, RecoveryPolicy, RecoveryStats, Transport};
use noc_types::{
    Coord, Cycle, Direction, FaultKind, NocConfig, NodeId, RoutingAlgorithm, SimError, SiteRef,
};
use nocalert::{info, AlertBank};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// Everything configurable about one aging campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingOptions {
    /// Network configuration; must use [`RoutingAlgorithm::FaultRegion`].
    pub noc: NocConfig,
    /// Containment escalation thresholds.
    pub policy: RecoveryPolicy,
    /// Retransmission policy of the end-to-end transport.
    pub arq: ArqConfig,
    /// Fault-free warm-up cycles before the first epoch.
    pub warmup: Cycle,
    /// Measured cycles per epoch with injection enabled.
    pub epoch_window: Cycle,
    /// Settle watchdog: `cycle_budget` bounds the post-window drain *per
    /// epoch* (measured from the window's end), `stall_window` is the
    /// no-progress horizon that declares the residual state steady.
    pub watchdog: Watchdog,
    /// Number of organic (sampled-site) fault epochs before the cut phase.
    pub organic_epochs: u32,
    /// Routers quarantined whole (one per epoch, between the organic and
    /// cut phases) — drives rectangular region formation, absorption and
    /// the orphan accounting for traffic addressed to dead nodes.
    pub quarantine_routers: Vec<u16>,
    /// Column whose East links the cut phase severs, one row per epoch.
    /// The final severing partitions the mesh and ends the campaign.
    pub cut_column: u8,
    /// Cycles into an organic epoch at which its fault activates.
    pub fault_offset: Cycle,
}

impl AgingOptions {
    /// The noc configuration shared by both default campaigns: single-VC
    /// ports (so quarantine fences the port and grows the region — the
    /// aging premise), one message class, light uniform load.
    fn base_noc(k: u8) -> NocConfig {
        let mut noc = NocConfig::paper_baseline();
        noc.mesh = noc_types::Mesh::new(k, k);
        noc.vcs_per_port = 1;
        noc.message_classes = 1;
        noc.packet_lengths = vec![5];
        noc.injection_rate = 0.02;
        noc.routing = RoutingAlgorithm::FaultRegion;
        noc
    }

    /// ARQ policy sized for aging: partitioned traffic must exhaust its
    /// retries *within one epoch's settle budget*, so the schedule is
    /// tighter than the recovery campaigns' default.
    fn base_arq(ack_timeout: Cycle, max_retries: u32) -> ArqConfig {
        ArqConfig {
            ack_timeout,
            backoff_factor: 2,
            backoff_cap: 2,
            max_retries,
            retire_horizon: 200_000,
        }
    }

    /// The full campaign: 8×8 mesh, a dozen organic permanents, then a
    /// column cut — several hundred thousand simulated cycles.
    pub fn paper_defaults() -> AgingOptions {
        AgingOptions {
            noc: AgingOptions::base_noc(8),
            policy: RecoveryPolicy {
                // Non-minimal detours plus the cut-phase funnel raise
                // worst-case *legitimate* head-of-line residency far above
                // the healthy-mesh default; a tight monitor quarantines
                // healthy congested VCs and cascades fenced links.
                stall_age: 20_000,
                ..RecoveryPolicy::default_policy()
            },
            // Retries must outlast a worm lost to containment *plus* the
            // backed-off resend schedule on a congested half-mesh.
            arq: AgingOptions::base_arq(2_000, 6),
            warmup: 500,
            epoch_window: 4_000,
            watchdog: Watchdog {
                cycle_budget: 60_000,
                stall_window: 2_000,
            },
            organic_epochs: 12,
            // Node (5, 5): an interior router whose absorption forms a
            // proper region rectangle away from the cut column.
            quarantine_routers: vec![45],
            cut_column: 3,
            fault_offset: 200,
        }
    }

    /// The CI smoke gate: 4×4 mesh, two organic epochs, one quarantined
    /// router, a four-row cut.
    pub fn smoke_defaults() -> AgingOptions {
        AgingOptions {
            noc: AgingOptions::base_noc(4),
            policy: RecoveryPolicy {
                stall_age: 10_000,
                ..RecoveryPolicy::default_policy()
            },
            arq: AgingOptions::base_arq(1_000, 4),
            warmup: 300,
            epoch_window: 1_500,
            watchdog: Watchdog {
                cycle_budget: 30_000,
                stall_window: 1_500,
            },
            organic_epochs: 2,
            // Node (2, 2): interior on the live side of the column-1 cut.
            quarantine_routers: vec![10],
            cut_column: 1,
            fault_offset: 100,
        }
    }

    /// Validates the nested policies and the aging-specific constraints.
    ///
    /// # Errors
    ///
    /// [`AgingError::Invalid`] for nested policy failures,
    /// [`AgingError::Options`] when the configuration cannot drive an
    /// aging campaign (wrong routing algorithm, cut column on the mesh
    /// edge, empty windows).
    pub fn validate(&self) -> Result<(), AgingError> {
        self.noc.validate().map_err(SimError::Config)?;
        self.policy.validate()?;
        self.arq.validate()?;
        self.watchdog.validate()?;
        if self.noc.routing != RoutingAlgorithm::FaultRegion {
            return Err(AgingError::Options(
                "aging requires RoutingAlgorithm::FaultRegion",
            ));
        }
        if self.epoch_window == 0 {
            return Err(AgingError::Options("epoch_window must be non-zero"));
        }
        if self.cut_column + 1 >= self.noc.mesh.width() {
            return Err(AgingError::Options(
                "cut_column must leave at least one column on each side",
            ));
        }
        if self
            .quarantine_routers
            .iter()
            .any(|&r| r as usize >= self.noc.mesh.len())
        {
            return Err(AgingError::Options(
                "quarantine_routers must lie inside the mesh",
            ));
        }
        Ok(())
    }
}

/// What an aging campaign can fail with.
#[derive(Debug)]
pub enum AgingError {
    /// A nested policy or the noc configuration failed validation.
    Invalid(SimError),
    /// The options are structurally unusable for an aging campaign.
    Options(&'static str),
    /// A resumed run's recomputed prefix row differs from the stored one
    /// — the checkpoint belongs to a different binary or configuration.
    ResumeDivergence {
        /// First diverging epoch index.
        epoch: u32,
    },
}

impl fmt::Display for AgingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgingError::Invalid(e) => write!(f, "invalid aging options: {e}"),
            AgingError::Options(reason) => write!(f, "unusable aging options: {reason}"),
            AgingError::ResumeDivergence { epoch } => {
                write!(
                    f,
                    "resume divergence at epoch {epoch}: recomputed row differs from checkpoint"
                )
            }
        }
    }
}

impl std::error::Error for AgingError {}

impl From<SimError> for AgingError {
    fn from(e: SimError) -> AgingError {
        AgingError::Invalid(e)
    }
}

/// The fault one epoch introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochFault {
    /// A sampled containment-covered permanent fault, contained and
    /// escalated through the live detection → quarantine loop.
    Organic {
        /// The fault site.
        site: SiteRef,
        /// The (hard) fault kind.
        kind: FaultKind,
    },
    /// A bidirectionally severed link — the deterministic wear front of
    /// the cut phase.
    Cut {
        /// Upstream router of the severed link.
        router: u16,
        /// Link direction out of `router`.
        dir: Direction,
    },
    /// A whole router declared faulty and absorbed into a region; its
    /// traffic becomes orphaned by topology.
    Quarantine {
        /// The absorbed router.
        router: u16,
    },
}

/// How one epoch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgingOutcome {
    /// The network absorbed the fault and the transport settled.
    Progressed,
    /// The settle watchdog tripped with the transport still pending —
    /// the survival failure the campaign exists to catch.
    Stalled,
    /// The live graph split; terminal by topology, reported honestly.
    Partitioned {
        /// Live components remaining.
        components: u32,
    },
}

/// One epoch's all-integer result row. Rows are what the campaign
/// checkpoints; resume recomputes and compares them bit-for-bit, so
/// every field must be deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: u32,
    /// The fault this epoch introduced.
    pub fault: EpochFault,
    /// Cycle the epoch started at.
    pub start_cycle: Cycle,
    /// Cycle the epoch settled (or gave up) at.
    pub end_cycle: Cycle,
    /// Application messages offered during this epoch.
    pub offered: u64,
    /// Messages delivered exactly once during this epoch.
    pub delivered: u64,
    /// Sender give-ups during this epoch.
    pub gave_up: u64,
    /// Give-ups excused by topology: an endpoint absorbed into a region
    /// or the endpoints mutually unreachable at settle time.
    pub orphans: u64,
    /// Data retransmissions sent during this epoch.
    pub retransmits: u64,
    /// Checker assertions raised during this epoch.
    pub alerts: u64,
    /// Sum of offered→delivered latencies over this epoch's deliveries.
    pub latency_sum: u64,
    /// Number of deliveries behind `latency_sum`.
    pub latency_count: u64,
    /// Every non-orphan message delivered exactly once, no duplicates,
    /// and the epoch settled inside its budget.
    pub exactly_once: bool,
    /// Fault-region rectangles at settle.
    pub regions: u32,
    /// Dead (severed or fenced-both-ways) links at settle.
    pub dead_links: u32,
    /// Routers absorbed into regions at settle.
    pub absorbed: u32,
    /// Live components at settle (1 until the partition epoch).
    pub components: u32,
    /// Cumulative containment counters at settle.
    pub recovery: RecoveryStats,
    /// Digest of the full fault-region routing state (ranks, tables,
    /// link liveness) at settle — the resume bit-identity pin.
    pub region_digest: u64,
    /// How the epoch ended.
    pub outcome: AgingOutcome,
}

impl EpochReport {
    /// Mean delivery latency this epoch, in cycles (0 when nothing
    /// delivered).
    pub fn mean_latency(&self) -> u64 {
        self.latency_sum
            .checked_div(self.latency_count)
            .unwrap_or(0)
    }
}

/// The whole campaign's result: every epoch row, in order. The last row
/// is the terminal one (partition reached, plan exhausted, or the first
/// stall).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingReport {
    /// Epoch rows in execution order.
    pub epochs: Vec<EpochReport>,
}

impl AgingReport {
    /// Live components of the terminal partition, when the campaign
    /// reached one.
    pub fn partition(&self) -> Option<u32> {
        match self.epochs.last()?.outcome {
            AgingOutcome::Partitioned { components } => Some(components),
            _ => None,
        }
    }

    /// Number of epochs that stalled.
    pub fn stalled_epochs(&self) -> u32 {
        self.epochs
            .iter()
            .filter(|e| e.outcome == AgingOutcome::Stalled)
            .count() as u32
    }

    /// Number of epochs that held the exactly-once bar.
    pub fn exactly_once_epochs(&self) -> u32 {
        self.epochs.iter().filter(|e| e.exactly_once).count() as u32
    }

    /// The campaign acceptance bar: the mesh aged all the way to a true
    /// partition (reported as such, never a stall), and every epoch —
    /// including the partitioning one — delivered all non-orphan traffic
    /// exactly once.
    pub fn accepted(&self) -> bool {
        self.partition().is_some()
            && self.stalled_epochs() == 0
            && self.exactly_once_epochs() == self.epochs.len() as u32
    }
}

/// The continuous-simulation aging harness.
#[derive(Debug, Clone)]
pub struct AgingHarness {
    opts: AgingOptions,
}

impl AgingHarness {
    /// Builds a harness after validating `opts`.
    ///
    /// # Errors
    ///
    /// Propagates [`AgingOptions::validate`] failures.
    pub fn try_new(opts: AgingOptions) -> Result<AgingHarness, AgingError> {
        opts.validate()?;
        Ok(AgingHarness { opts })
    }

    /// The options the harness runs with.
    pub fn options(&self) -> &AgingOptions {
        &self.opts
    }

    /// The deterministic epoch plan: organic faults first, then the cut
    /// front. A pure function of the options — resume depends on that.
    pub fn plan(&self) -> Vec<EpochFault> {
        let noc = &self.opts.noc;
        let mesh = noc.mesh;
        // Organic universe: containment-covered signals on cardinal input
        // ports that actually have an upstream link to fence (so each
        // contained fault can grow the region map).
        let universe: Vec<SiteRef> = fault::enumerate_sites(noc)
            .into_iter()
            .filter(|s| {
                containment_covered(s.signal)
                    && (s.port as usize) < Direction::ALL.len() - 1
                    && mesh
                        .neighbor(NodeId(s.router), Direction::ALL[s.port as usize])
                        .is_some()
            })
            .collect();
        const KINDS: [FaultKind; 3] = [
            FaultKind::Permanent,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
        ];
        let mut plan: Vec<EpochFault> =
            fault::sample::stride(&universe, self.opts.organic_epochs as usize)
                .into_iter()
                .enumerate()
                .map(|(i, site)| EpochFault::Organic {
                    site,
                    kind: KINDS[i % KINDS.len()],
                })
                .collect();
        for &router in &self.opts.quarantine_routers {
            plan.push(EpochFault::Quarantine { router });
        }
        for y in 0..mesh.height() {
            plan.push(EpochFault::Cut {
                router: mesh.node(Coord::new(self.opts.cut_column, y)).0,
                dir: Direction::East,
            });
        }
        plan
    }

    /// Runs the campaign (or resumes one).
    ///
    /// `prior` is the checkpointed prefix, in epoch order; the harness
    /// re-simulates it and asserts each recomputed row equals the stored
    /// one, then continues. `on_epoch` fires for every *fresh* row as
    /// soon as it settles (the checkpoint append hook).
    ///
    /// # Errors
    ///
    /// [`AgingError::ResumeDivergence`] when a recomputed prefix row
    /// differs from `prior`.
    pub fn run(
        &self,
        prior: &[EpochReport],
        mut on_epoch: impl FnMut(&EpochReport),
    ) -> Result<AgingReport, AgingError> {
        let opts = &self.opts;
        let plan = self.plan();
        let mut net = Network::new(opts.noc.clone());
        net.enable_recovery(opts.policy);
        let mut bank = AlertBank::new(&opts.noc);
        // The full bank stays armed across epochs: region detours are
        // excused per RC execution by the region-aware turn/progress
        // checkers, which stay live for misroutes inside the detours.
        let mut transport = Transport::new(&opts.noc, opts.arq);
        let mut consumed = 0usize;

        while net.cycle() < opts.warmup {
            step_once(&mut net, &mut bank, &mut transport, &mut consumed);
        }

        let mut cursor = Cursor::default();
        let mut epochs: Vec<EpochReport> = Vec::with_capacity(plan.len());
        for (i, fault) in plan.into_iter().enumerate() {
            let report = self.run_epoch(
                i as u32,
                fault,
                &mut net,
                &mut bank,
                &mut transport,
                &mut consumed,
                &mut cursor,
            );
            if let Some(stored) = prior.get(i) {
                if *stored != report {
                    return Err(AgingError::ResumeDivergence { epoch: i as u32 });
                }
            } else {
                on_epoch(&report);
            }
            let terminal = matches!(report.outcome, AgingOutcome::Partitioned { .. });
            epochs.push(report);
            if terminal {
                break;
            }
        }
        Ok(AgingReport { epochs })
    }

    /// One epoch: introduce the fault, run the measurement window, settle,
    /// and aggregate the deltas into a row.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch(
        &self,
        epoch: u32,
        fault: EpochFault,
        net: &mut Network,
        bank: &mut AlertBank,
        transport: &mut Transport,
        consumed: &mut usize,
        cursor: &mut Cursor,
    ) -> EpochReport {
        let opts = &self.opts;
        let start_cycle = net.cycle();
        match fault {
            EpochFault::Organic { site, kind } => {
                net.arm_extra_fault(site, kind, start_cycle + opts.fault_offset);
            }
            EpochFault::Cut { router, dir } => {
                net.sever_link(router, dir);
            }
            EpochFault::Quarantine { router } => {
                net.quarantine_router(router);
            }
        }

        net.set_injection_enabled(true);
        let active_end = start_cycle + opts.epoch_window;
        while net.cycle() < active_end {
            step_once(net, bank, transport, consumed);
        }

        net.set_injection_enabled(false);
        let budget_end = active_end + opts.watchdog.cycle_budget;
        let mut sig = net.progress_signature();
        let mut stalled: Cycle = 0;
        let mut stalled_out = false;
        loop {
            // Settled: the transport has nothing pending and the network
            // either drained or froze into its quarantined steady state
            // (permanents may pin garbage flits in fenced buffers forever
            // — that residue is contained, not a liveness failure).
            if transport.quiescent() && (net.is_drained() || stalled >= opts.watchdog.stall_window)
            {
                break;
            }
            if net.cycle() >= budget_end {
                stalled_out = !transport.quiescent();
                break;
            }
            step_once(net, bank, transport, consumed);
            let now = net.progress_signature();
            if now == sig {
                stalled += 1;
            } else {
                sig = now;
                stalled = 0;
            }
        }

        let (delta, orphans) = cursor.advance(transport, net);
        let exactly_once = !stalled_out
            && delta.duplicates == 0
            && delta.gave_up == orphans
            && delta.offered == delta.delivered + delta.gave_up;

        let map = net.fault_region_map();
        let components = map.map_or(1, |m| m.live_components().max(1));
        let partitioned = map.is_some_and(|m| m.partitioned());
        let outcome = if partitioned {
            AgingOutcome::Partitioned { components }
        } else if stalled_out {
            AgingOutcome::Stalled
        } else {
            AgingOutcome::Progressed
        };
        let alerts = bank.assertions().len() as u64 - cursor.alerts_seen;
        cursor.alerts_seen = bank.assertions().len() as u64;

        EpochReport {
            epoch,
            fault,
            start_cycle,
            end_cycle: net.cycle(),
            offered: delta.offered,
            delivered: delta.delivered,
            gave_up: delta.gave_up,
            orphans,
            retransmits: delta.retransmits,
            alerts,
            latency_sum: delta.latency_sum,
            latency_count: delta.latency_count,
            exactly_once,
            regions: map.map_or(0, |m| m.regions().len() as u32),
            dead_links: map.map_or(0, |m| m.dead_links()),
            absorbed: map.map_or(0, |m| m.absorbed_count()),
            components,
            recovery: net.recovery_stats(),
            region_digest: map.map_or(0, |m| m.state_digest()),
            outcome,
        }
    }
}

/// One closed-loop cycle, identical to the recovery harness's: step the
/// network under the checker bank and transport, feed fresh alerts to
/// containment, let the transport fabricate control packets.
fn step_once(
    net: &mut Network,
    bank: &mut AlertBank,
    transport: &mut Transport,
    consumed: &mut usize,
) {
    net.step_observed(&mut (&mut *bank, &mut *transport));
    let fresh = bank.events_since(*consumed);
    *consumed = bank.assertions().len();
    for ev in fresh {
        if let Some(module) = info(ev.checker).module {
            net.notify_alert(ev.router, ev.port, ev.vc, module.port_is_output());
        }
    }
    transport.post_step(net);
}

/// Per-epoch transport deltas.
#[derive(Debug, Default, Clone, Copy)]
struct Delta {
    offered: u64,
    delivered: u64,
    gave_up: u64,
    retransmits: u64,
    duplicates: u64,
    latency_sum: u64,
    latency_count: u64,
}

/// Tracks how far into the transport's append-only histories previous
/// epochs have consumed, so each epoch aggregates only its own slice.
#[derive(Debug, Default)]
struct Cursor {
    stats: noc_sim::TransportStats,
    records_seen: usize,
    failed_seen: usize,
    alerts_seen: u64,
    apps_delivered: BTreeSet<u64>,
}

impl Cursor {
    /// Consumes everything new since the previous epoch; returns the
    /// delta and the number of orphaned give-ups among it.
    fn advance(&mut self, transport: &Transport, net: &Network) -> (Delta, u64) {
        let now = transport.stats();
        let mut delta = Delta {
            offered: now.offered - self.stats.offered,
            delivered: now.delivered - self.stats.delivered,
            gave_up: now.gave_up - self.stats.gave_up,
            retransmits: now.retransmits - self.stats.retransmits,
            ..Delta::default()
        };
        self.stats = now;
        for rec in &transport.records()[self.records_seen..] {
            if !self.apps_delivered.insert(rec.app) {
                delta.duplicates += 1;
            }
            delta.latency_sum += rec.delivered_at.saturating_sub(rec.offered_at);
            delta.latency_count += 1;
        }
        self.records_seen = transport.records().len();
        let map = net.fault_region_map();
        let mut orphans = 0u64;
        for failure in &transport.failed()[self.failed_seen..] {
            let excused = map.is_some_and(|m| {
                let (s, d) = (NodeId(failure.src), NodeId(failure.dest));
                m.absorbed(s) || m.absorbed(d) || !m.reachable(s, d)
            });
            if excused {
                orphans += 1;
            }
        }
        self.failed_seen = transport.failed().len();
        (delta, orphans)
    }
}

/// The aging campaign's durable epoch log: `meta.json` pins the
/// [`AgingOptions`], `epochs.jsonl` holds one [`EpochReport`] per line,
/// appended and flushed as each epoch settles. Durability semantics are
/// the shared [`jsonl`] substrate's (torn tails repaired, mid-file
/// corruption refused, mismatched configurations refused) — resume feeds
/// the loaded rows to [`AgingHarness::run`], which re-simulates the
/// prefix and verifies each row bit-for-bit.
#[derive(Debug)]
pub struct EpochLog {
    appender: jsonl::Appender,
}

impl EpochLog {
    /// Opens (creating if needed) an epoch-log directory pinned to
    /// `opts`, returning previously completed rows plus the append
    /// handle. Without `resume`, a directory that already holds rows is
    /// refused.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on I/O failures or a populated
    /// directory without `resume`, [`CampaignError::CheckpointMismatch`]
    /// for a foreign configuration, [`CampaignError::ShardCorrupt`] for
    /// mid-file damage.
    pub fn open(
        dir: &Path,
        opts: &AgingOptions,
        resume: bool,
    ) -> Result<(Vec<EpochReport>, EpochLog), CampaignError> {
        jsonl::ensure_meta(dir, 1, opts)?;
        let path = dir.join("epochs.jsonl");
        let (rows, _torn) = jsonl::load_file::<EpochReport>(&path)?;
        if !resume && !rows.is_empty() {
            return Err(CampaignError::Checkpoint {
                path: dir.to_path_buf(),
                detail: format!(
                    "directory already holds {} completed epochs; pass resume=true to continue or point at a fresh directory",
                    rows.len()
                ),
            });
        }
        let appender = jsonl::Appender::open(&path)?;
        Ok((rows, EpochLog { appender }))
    }

    /// Appends one settled epoch and flushes it — the log's kill-safety
    /// granularity.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on serialization or I/O failures.
    pub fn append(&mut self, row: &EpochReport) -> Result<(), CampaignError> {
        self.appender.append(row)
    }
}

/// Judges a whole aging report the way [`crate::verify_delivery`] judges
/// one rollout: exactly-once over the campaign, with orphaned give-ups
/// excused.
pub fn verdict_of(report: &AgingReport) -> DeliveryVerdict {
    let mut undelivered = 0u64;
    let mut gave_up = 0u64;
    for e in &report.epochs {
        undelivered += (e.offered - e.delivered).saturating_sub(e.orphans);
        gave_up += e.gave_up.saturating_sub(e.orphans);
    }
    if undelivered == 0 && gave_up == 0 {
        DeliveryVerdict::ExactlyOnce
    } else {
        DeliveryVerdict::Violated {
            undelivered,
            gave_up,
            duplicates: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_harness() -> AgingHarness {
        AgingHarness::try_new(AgingOptions::smoke_defaults()).expect("valid options")
    }

    #[test]
    fn options_validation_rejects_wrong_routing_and_bad_cut() {
        let mut opts = AgingOptions::smoke_defaults();
        opts.noc.routing = RoutingAlgorithm::XY;
        assert!(matches!(
            AgingHarness::try_new(opts).unwrap_err(),
            AgingError::Options(_)
        ));
        let mut opts = AgingOptions::smoke_defaults();
        opts.cut_column = opts.noc.mesh.width() - 1;
        assert!(AgingHarness::try_new(opts).is_err());
    }

    #[test]
    fn plan_is_organic_then_quarantine_then_a_full_column_cut() {
        let h = smoke_harness();
        let plan = h.plan();
        let organic = h.options().organic_epochs as usize;
        let quarantines = h.options().quarantine_routers.len();
        let height = h.options().noc.mesh.height() as usize;
        assert_eq!(plan.len(), organic + quarantines + height);
        assert!(plan[..organic]
            .iter()
            .all(|f| matches!(f, EpochFault::Organic { .. })));
        assert!(plan[organic..organic + quarantines]
            .iter()
            .all(|f| matches!(f, EpochFault::Quarantine { .. })));
        assert!(plan[organic + quarantines..].iter().all(|f| matches!(
            f,
            EpochFault::Cut {
                dir: Direction::East,
                ..
            }
        )));
        // Deterministic: two harnesses over equal options agree.
        assert_eq!(plan, smoke_harness().plan());
    }

    #[test]
    fn smoke_campaign_ages_to_partition_with_exactly_once_survival() {
        let h = smoke_harness();
        let mut streamed = Vec::new();
        let report = h
            .run(&[], |e| streamed.push(e.clone()))
            .expect("campaign runs");
        assert_eq!(streamed.len(), report.epochs.len());
        // The cut phase must end the campaign in an honest partition.
        let components = report.partition().expect("campaign reaches partition");
        assert_eq!(components, 2, "a column cut splits the mesh in two");
        assert_eq!(
            report.stalled_epochs(),
            0,
            "no epoch may stall: {report:#?}"
        );
        assert!(
            report.accepted(),
            "every epoch must hold exactly-once: {report:#?}"
        );
        assert_eq!(verdict_of(&report), DeliveryVerdict::ExactlyOnce);
        // The damage population actually grew before the partition.
        let last = report.epochs.last().expect("non-empty");
        assert!(last.dead_links >= h.options().noc.mesh.height() as u32);
        assert!(last.recovery.reroutes_taken > 0, "region routing engaged");
        // The quarantine epoch formed a real rectangular region.
        assert!(last.regions >= 1, "no region formed: {last:#?}");
        assert!(last.absorbed >= 1);
        assert!(last.recovery.regions_formed >= 1);
        assert!(last.recovery.routers_absorbed >= 1);
    }

    #[test]
    fn resume_reproduces_the_prefix_bit_identically() {
        let h = smoke_harness();
        let full = h.run(&[], |_| {}).expect("full run");
        assert!(full.epochs.len() >= 3);
        let split = full.epochs.len() / 2;
        let mut fresh = Vec::new();
        let resumed = h
            .run(&full.epochs[..split], |e| fresh.push(e.clone()))
            .expect("resume runs");
        assert_eq!(resumed, full, "resume must reproduce the full campaign");
        assert_eq!(fresh.len(), full.epochs.len() - split);
        assert_eq!(fresh[0], full.epochs[split]);
        // Region routing state round-trips: digests pin every epoch.
        for (a, b) in resumed.epochs.iter().zip(&full.epochs) {
            assert_eq!(a.region_digest, b.region_digest);
        }
    }

    #[test]
    fn resume_divergence_is_an_error_not_a_fork() {
        let h = smoke_harness();
        let full = h.run(&[], |_| {}).expect("full run");
        let mut forged = full.epochs.clone();
        forged[0].delivered += 1;
        let err = h.run(&forged, |_| {}).unwrap_err();
        assert!(matches!(err, AgingError::ResumeDivergence { epoch: 0 }));
    }
}
