//! The `nocalertd` server: HTTP routing, the worker pool, and the SSE
//! incident feed.
//!
//! Routes:
//!
//! | Method | Path                  | Body / response                      |
//! |--------|-----------------------|--------------------------------------|
//! | GET    | `/healthz`            | `ok`                                 |
//! | POST   | `/jobs`               | [`JobSpec`] → [`JobStatus`] (201)    |
//! | GET    | `/jobs`               | `[JobStatus, …]`                     |
//! | GET    | `/jobs/<id>`          | [`JobStatus`]                        |
//! | GET    | `/jobs/<id>/result`   | [`JobResult`] (404 until complete)   |
//! | GET    | `/jobs/<id>/incidents`| `[Incident, …]` observed so far      |
//! | GET    | `/jobs/<id>/events`   | SSE feed of [`JobEvent`]s            |
//! | POST   | `/jobs/<id>/cancel`   | [`JobStatus`]                        |
//!
//! The worker pool drains a FIFO of queued job ids. Each worker builds
//! a [`JobDriver`] rooted at the job's `checkpoint/` directory — with
//! resume enabled for jobs recovered after a restart — and relays the
//! driver's events into the job's feed, which SSE consumers tail. The
//! pool size bounds *jobs in flight*; each job additionally shards its
//! own campaign across `spec.threads` rollout workers.

use golden::{GoldenCache, JobDriver};
use noc_types::{JobEvent, JobSpec, JobState};
use serde::Serialize;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;

use crate::http;
use crate::registry::{JobHandle, Registry};

/// Serializes any compat-serde value to a JSON string (infallibly —
/// the compat serializer is total).
fn json_of<T: Serialize>(v: &T) -> String {
    let mut out = String::new();
    v.to_value().write_json(&mut out);
    out
}

fn json_list<T: Serialize>(items: &[T]) -> String {
    let values: Vec<serde::Value> = items.iter().map(|i| i.to_value()).collect();
    json_of(&serde::Value::Array(values))
}

/// FIFO of queued job ids, shared between the accept loop and the
/// worker pool.
#[derive(Debug, Default)]
struct JobQueue {
    queue: Mutex<VecDeque<String>>,
    cond: Condvar,
}

impl JobQueue {
    fn push(&self, id: String) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(id);
        self.cond.notify_one();
    }

    fn pop_blocking(&self) -> String {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(id) = queue.pop_front() {
                return id;
            }
            queue = self
                .cond
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Durable state root; jobs live under `<data_dir>/jobs/`.
    pub data_dir: PathBuf,
    /// Worker-pool size: jobs executed concurrently.
    pub workers: usize,
}

/// A bound (but not yet serving) `nocalertd` instance.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    queue: Arc<JobQueue>,
    cache: Arc<GoldenCache>,
    workers: usize,
}

impl Server {
    /// Binds the listener, opens the registry, and re-enqueues every
    /// job a previous process left non-terminal (those jobs run with
    /// resume enabled, restoring completed units from their shards).
    ///
    /// # Errors
    ///
    /// Bind failures and registry I/O failures.
    pub fn bind(opts: &ServerOptions) -> io::Result<Server> {
        let (registry, pending) = Registry::open(&opts.data_dir)?;
        let listener = TcpListener::bind(&opts.addr)?;
        let queue = Arc::new(JobQueue::default());
        for id in pending {
            eprintln!("[nocalertd] re-enqueueing recovered job {id}");
            queue.push(id);
        }
        Ok(Server {
            listener,
            registry: Arc::new(registry),
            queue,
            cache: Arc::new(GoldenCache::new()),
            workers: opts.workers.max(1),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the worker pool and serves connections forever.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures (per-connection errors are logged
    /// and absorbed).
    pub fn run(self) -> io::Result<()> {
        for _ in 0..self.workers {
            let registry = Arc::clone(&self.registry);
            let queue = Arc::clone(&self.queue);
            let cache = Arc::clone(&self.cache);
            thread::spawn(move || loop {
                let id = queue.pop_blocking();
                run_job(&registry, &cache, &id);
            });
        }
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    let registry = Arc::clone(&self.registry);
                    let queue = Arc::clone(&self.queue);
                    thread::spawn(move || {
                        if let Err(e) = handle_connection(&registry, &queue, stream) {
                            eprintln!("[nocalertd] connection error: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("[nocalertd] accept error: {e}"),
            }
        }
        Ok(())
    }
}

/// Executes one job end to end, relaying driver events into the feed
/// and persisting every lifecycle transition.
fn run_job(registry: &Registry, cache: &Arc<GoldenCache>, id: &str) {
    let Some(handle) = registry.get(id) else {
        eprintln!("[nocalertd] dequeued unknown job {id}");
        return;
    };
    // A cancel that raced the queue: honour it without running.
    if handle.state().terminal() {
        return;
    }
    handle.set_state(JobState::Running, None);
    if let Err(e) = registry.persist(id) {
        eprintln!("[nocalertd] persist({id}): {e}");
    }
    let driver = JobDriver {
        checkpoint_dir: Some(registry.job_dir(id).join("checkpoint")),
        resume: handle.recovered,
        cancel: Some(Arc::clone(&handle.cancel)),
        cache: Arc::clone(cache),
    };
    let feed_handle = Arc::clone(&handle);
    let outcome = driver.run(&handle.spec, &mut |event: JobEvent| {
        feed_handle.push_event(event);
    });
    match outcome {
        Ok(result) => {
            let state = if result.interrupted {
                JobState::Cancelled
            } else {
                JobState::Completed
            };
            if let Err(e) = registry.write_result(id, &result) {
                eprintln!("[nocalertd] write_result({id}): {e}");
                handle.set_state(JobState::Failed, Some(format!("result persist: {e}")));
            } else {
                handle.set_state(state, None);
            }
        }
        Err(e) => {
            handle.set_state(JobState::Failed, Some(e.to_string()));
        }
    }
    if let Err(e) = registry.persist(id) {
        eprintln!("[nocalertd] persist({id}): {e}");
    }
}

fn handle_connection(
    registry: &Registry,
    queue: &JobQueue,
    mut stream: TcpStream,
) -> io::Result<()> {
    let request = match http::read_request(&stream) {
        Ok(r) => r,
        Err(e) => {
            return http::respond_error(&mut stream, 400, "Bad Request", &e.to_string());
        }
    };
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => http::respond(&mut stream, 200, "OK", "text/plain", "ok"),
        ("POST", ["jobs"]) => submit(registry, queue, &mut stream, &request.body),
        ("GET", ["jobs"]) => {
            http::respond_json(&mut stream, 200, "OK", &json_list(&registry.list()))
        }
        ("GET", ["jobs", id]) => with_job(registry, &mut stream, id, |stream, handle| {
            http::respond_json(stream, 200, "OK", &json_of(&handle.status()))
        }),
        ("GET", ["jobs", id, "result"]) => with_job(registry, &mut stream, id, |stream, handle| {
            match registry.read_result(&handle.id) {
                Ok(Some(result)) => http::respond_json(stream, 200, "OK", &json_of(&result)),
                Ok(None) => http::respond_error(stream, 404, "Not Found", "no result yet"),
                Err(e) => http::respond_error(stream, 500, "Internal Server Error", &e.to_string()),
            }
        }),
        ("GET", ["jobs", id, "incidents"]) => {
            with_job(registry, &mut stream, id, |stream, handle| {
                let incidents = incidents_of(registry, handle);
                http::respond_json(stream, 200, "OK", &json_list(&incidents))
            })
        }
        ("GET", ["jobs", id, "events"]) => with_job(registry, &mut stream, id, |stream, handle| {
            stream_feed(registry, stream, handle)
        }),
        ("POST", ["jobs", id, "cancel"]) => {
            with_job(registry, &mut stream, id, |stream, handle| {
                handle.cancel.store(true, Ordering::Relaxed);
                // A job still in the queue will observe the terminal
                // state at dequeue and be skipped; a running job's
                // driver stops at the next chunk boundary.
                if handle.state() == JobState::Queued {
                    handle.set_state(JobState::Cancelled, None);
                }
                if let Err(e) = registry.persist(&handle.id) {
                    eprintln!("[nocalertd] persist({}): {e}", handle.id);
                }
                http::respond_json(stream, 200, "OK", &json_of(&handle.status()))
            })
        }
        _ => http::respond_error(&mut stream, 404, "Not Found", "unknown route"),
    }
}

fn with_job(
    registry: &Registry,
    stream: &mut TcpStream,
    id: &str,
    body: impl FnOnce(&mut TcpStream, &Arc<JobHandle>) -> io::Result<()>,
) -> io::Result<()> {
    match registry.get(id) {
        Some(handle) => body(stream, &handle),
        None => http::respond_error(stream, 404, "Not Found", &format!("no job {id}")),
    }
}

fn submit(
    registry: &Registry,
    queue: &JobQueue,
    stream: &mut TcpStream,
    body: &str,
) -> io::Result<()> {
    let spec: JobSpec = match serde_json::from_str(body) {
        Ok(s) => s,
        Err(e) => {
            return http::respond_error(stream, 400, "Bad Request", &format!("bad spec: {e}"));
        }
    };
    if let Err(e) = spec.validate() {
        return http::respond_error(stream, 400, "Bad Request", &format!("invalid spec: {e}"));
    }
    let handle = match registry.create(spec) {
        Ok(h) => h,
        Err(e) => {
            return http::respond_error(stream, 500, "Internal Server Error", &e.to_string());
        }
    };
    queue.push(handle.id.clone());
    http::respond_json(stream, 201, "Created", &json_of(&handle.status()))
}

/// The incidents observable right now: the live feed's incident events
/// while the job runs, or the durable result's list once it has one
/// (covering completed jobs reloaded after a restart, whose in-memory
/// feed starts empty).
fn incidents_of(registry: &Registry, handle: &Arc<JobHandle>) -> Vec<noc_types::Incident> {
    if let Ok(Some(result)) = registry.read_result(&handle.id) {
        return result.incidents;
    }
    handle
        .events_snapshot()
        .into_iter()
        .filter_map(|e| match e {
            JobEvent::Incident(i) => Some(i),
            _ => None,
        })
        .collect()
}

/// Tails a job's feed as SSE frames until the job is terminal and the
/// feed is drained, then emits `event: done` and closes.
///
/// For a terminal job whose in-memory feed is empty (reloaded after a
/// restart), the frames are synthesized from the durable record: the
/// final state plus every stored incident.
fn stream_feed(
    registry: &Registry,
    stream: &mut TcpStream,
    handle: &Arc<JobHandle>,
) -> io::Result<()> {
    http::sse_preamble(stream)?;
    let (initial, drained) = handle.wait_events(0);
    if initial.is_empty() && drained {
        if let Ok(Some(result)) = registry.read_result(&handle.id) {
            http::sse_event(stream, None, &json_of(&JobEvent::State(handle.state())))?;
            for incident in result.incidents {
                http::sse_event(stream, None, &json_of(&JobEvent::Incident(incident)))?;
            }
        }
        return http::sse_event(stream, Some("done"), "{}");
    }
    let mut cursor = 0usize;
    loop {
        let (events, drained) = handle.wait_events(cursor);
        cursor += events.len();
        for event in events {
            http::sse_event(stream, None, &json_of(&event))?;
        }
        if drained {
            return http::sse_event(stream, Some("done"), "{}");
        }
    }
}
