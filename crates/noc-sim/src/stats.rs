//! Network-performance instrumentation: an observer that builds latency
//! histograms and per-node throughput accounting.
//!
//! The fault campaign does not need this — it reasons about correctness,
//! not performance — but a NoC substrate is only credible if it exhibits
//! the classic load/latency behaviour, and the performance examples and
//! ablation benches measure exactly that through [`StatsCollector`].

use crate::network::Observer;
use noc_types::record::EjectEvent;
use noc_types::{Cycle, Flit};
use serde::{Deserialize, Serialize};

/// Latency histogram with power-of-two-ish buckets plus exact percentile
/// support over a bounded reservoir.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sum: u64,
    max: u64,
}

impl LatencyStats {
    /// Record one latency sample.
    pub fn record(&mut self, lat: u64) {
        // Bounded reservoir: plenty for percentile estimates, O(1) memory.
        if self.samples.len() < 1 << 20 {
            self.samples.push(lat);
        }
        self.sum += lat;
        self.max = self.max.max(lat);
    }

    /// Number of samples recorded (capped count).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.samples.len() as f64
        }
    }

    /// Maximum observed latency.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0–100) of the recorded samples.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut v = self.samples.clone();
        v.sort_unstable();
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }
}

/// Observer accumulating network-performance statistics.
#[derive(Debug, Clone, Default)]
pub struct StatsCollector {
    /// Flit latency (generation → ejection), all flits.
    pub flit_latency: LatencyStats,
    /// Packet latency (generation → tail ejection).
    pub packet_latency: LatencyStats,
    /// Flits ejected per node.
    pub per_node_ejected: Vec<u64>,
    /// Total flits injected.
    pub injected: u64,
    /// Total flits ejected.
    pub ejected: u64,
    first_cycle: Option<Cycle>,
    last_cycle: Cycle,
}

impl StatsCollector {
    /// A fresh collector.
    pub fn new() -> StatsCollector {
        StatsCollector::default()
    }

    /// Accepted throughput in flits/cycle over the observed window.
    pub fn throughput(&self) -> f64 {
        match self.first_cycle {
            Some(f) if self.last_cycle > f => self.ejected as f64 / (self.last_cycle - f) as f64,
            _ => 0.0,
        }
    }
}

impl Observer for StatsCollector {
    fn on_inject(&mut self, cycle: Cycle, _flit: &Flit) {
        self.first_cycle.get_or_insert(cycle);
        self.last_cycle = self.last_cycle.max(cycle);
        self.injected += 1;
    }

    fn on_eject(&mut self, ev: &EjectEvent) {
        self.first_cycle.get_or_insert(ev.cycle);
        self.last_cycle = self.last_cycle.max(ev.cycle);
        self.ejected += 1;
        let node = ev.node.index();
        if self.per_node_ejected.len() <= node {
            self.per_node_ejected.resize(node + 1, 0);
        }
        self.per_node_ejected[node] += 1;
        let lat = ev.cycle.saturating_sub(ev.flit.injected_at);
        self.flit_latency.record(lat);
        if ev.flit.is_tail() {
            self.packet_latency.record(lat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use noc_types::NocConfig;

    #[test]
    fn percentiles_and_mean() {
        let mut l = LatencyStats::default();
        for i in 1..=100 {
            l.record(i);
        }
        assert_eq!(l.len(), 100);
        assert!((l.mean() - 50.5).abs() < 1e-9);
        assert_eq!(l.percentile(0.0), 1);
        assert_eq!(l.percentile(50.0), 51);
        assert_eq!(l.percentile(100.0), 100);
        assert_eq!(l.max(), 100);
    }

    #[test]
    fn empty_stats_are_zero() {
        let l = LatencyStats::default();
        assert!(l.is_empty());
        assert_eq!(l.mean(), 0.0);
        assert_eq!(l.percentile(99.0), 0);
        let s = StatsCollector::new();
        assert_eq!(s.throughput(), 0.0);
    }

    #[test]
    fn collector_tracks_a_real_run() {
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.08;
        let mut net = Network::new(cfg);
        let mut stats = StatsCollector::new();
        for _ in 0..4_000 {
            net.step_observed(&mut stats);
        }
        assert!(stats.injected > 0);
        assert!(stats.ejected > 0);
        assert!(stats.flit_latency.mean() > 5.0);
        assert!(stats.packet_latency.mean() >= stats.flit_latency.percentile(0.0) as f64);
        assert!(stats.throughput() > 0.0);
        // Tail percentiles dominate the median under congestion-free load.
        assert!(stats.flit_latency.percentile(99.0) >= stats.flit_latency.percentile(50.0));
        // Every node of the 4×4 mesh received something at this load.
        assert!(stats.per_node_ejected.iter().filter(|&&n| n > 0).count() >= 12);
    }
}
