//! Diagnostic: hunt for false negatives (violations NoCAlert missed) in a
//! sampled campaign and print full details of each.

use noc_types::NocConfig;
use nocalert_golden::{Campaign, CampaignConfig, Detector, Outcome};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let warmup: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let mut noc = NocConfig::paper_baseline();
    noc.injection_rate = 0.10;
    let cc = CampaignConfig::paper_defaults(noc, warmup);
    let campaign = Campaign::new(cc);
    let sites = fault::sample::stride(&fault::enumerate_sites(&campaign.config().noc), n);
    let results = campaign.run_many(&sites, 4);
    let mut fn_count = 0;
    for r in &results {
        for d in [Detector::NoCAlert, Detector::ForEVeR] {
            if r.outcome(d) == Outcome::FalseNegative {
                fn_count += 1;
                println!(
                    "FN[{d:?}] site={} kind={:?} hits={} verdict={:?} nocalert={:?} forever={:?}",
                    r.site, r.kind, r.fault_hits, r.verdict.violations, r.nocalert, r.forever
                );
            }
        }
    }
    println!("total {} runs, {} FN entries", results.len(), fn_count);
}
