//! A deliberately small HTTP/1.1 server+client substrate over
//! `std::net` — just enough for `nocalertd`'s JSON routes and its
//! Server-Sent-Events incident feed, with no external dependencies.
//!
//! The subset implemented: one request per connection
//! (`Connection: close`), `Content-Length`-framed bodies, and
//! `text/event-stream` responses written incrementally. That subset is
//! exactly what `curl` speaks by default, which keeps the CI smoke and
//! the README quick-start honest.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest request body the server will read, in bytes. A `JobSpec` is
/// a few hundred bytes; this bound exists so a misbehaving client
/// cannot balloon the server.
pub const MAX_BODY: usize = 1 << 20;

fn proto_err(detail: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.to_string())
}

/// A parsed request: method, path, and UTF-8 body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET` / `POST` / …
    pub method: String,
    /// Request target, e.g. `/jobs/job-0001/events`.
    pub path: String,
    /// The body (empty when the request carried none).
    pub body: String,
}

/// Reads one HTTP/1.1 request from `stream`.
///
/// # Errors
///
/// I/O failures, a malformed request line, an oversized or non-UTF-8
/// body.
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(proto_err("malformed request line"));
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let trimmed = header.trim();
        if trimmed.is_empty() {
            break;
        }
        let lower = trimmed.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(proto_err)?;
        }
    }
    if content_length > MAX_BODY {
        return Err(proto_err("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(proto_err)?;
    Ok(Request { method, path, body })
}

/// Writes a complete `Content-Length`-framed response and flushes.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// `200 OK` with a JSON body.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    json: &str,
) -> io::Result<()> {
    respond(stream, status, reason, "application/json", json)
}

/// An error response with a plain-text body.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    detail: &str,
) -> io::Result<()> {
    respond(stream, status, reason, "text/plain", detail)
}

/// Starts a Server-Sent-Events response: headers only, the connection
/// stays open for incremental [`sse_event`] frames.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn sse_preamble(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
          Cache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one SSE frame. `event` of `None` is a plain `data:` frame.
///
/// # Errors
///
/// Propagates stream write failures (a disconnected consumer).
pub fn sse_event(stream: &mut TcpStream, event: Option<&str>, data: &str) -> io::Result<()> {
    if let Some(name) = event {
        stream.write_all(format!("event: {name}\n").as_bytes())?;
    }
    stream.write_all(format!("data: {data}\n\n").as_bytes())?;
    stream.flush()
}

/// One-shot client request; returns `(status, body)`.
///
/// The body is read to connection close, so it works for both framed
/// and close-delimited responses.
///
/// # Errors
///
/// Connection, write, or malformed-response failures.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| proto_err(format!("malformed status line: {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let trimmed = header.trim();
        if trimmed.is_empty() {
            break;
        }
        let lower = trimmed.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().ok();
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf).map_err(proto_err)?;
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok((status, body))
}

/// Streams an SSE endpoint: calls `on_data` with each `data:` payload
/// until the server sends an `event: done` frame, the callback returns
/// `false`, or the connection closes.
///
/// # Errors
///
/// Connection or read failures before the stream ends cleanly.
pub fn stream_events(
    addr: &str,
    path: &str,
    on_data: &mut dyn FnMut(&str) -> bool,
) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    let head = format!(
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\
         Connection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    // Status line + headers.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        if line.trim().is_empty() {
            break;
        }
    }
    let mut done = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let trimmed = line.trim_end();
        if trimmed == "event: done" {
            done = true;
        } else if let Some(data) = trimmed.strip_prefix("data: ") {
            if done || !on_data(data) {
                return Ok(());
            }
        }
    }
}
