//! **Fault localization accuracy** — extension experiment: how well does
//! the assertion stream pinpoint the faulty router/module? A recovery or
//! reconfiguration mechanism (the paper positions NoCAlert as the front
//! end of one) acts on exactly this information.
//!
//! For each sampled fault site that produced assertions, run
//! `nocalert::localize` over the assertion stream and compare with the
//! actually injected site.
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin diagnose -- [--sites N] [--warm W]
//! ```

use noc_sim::Network;
use noc_types::{FaultKind, Mesh, NodeId};
use nocalert::{localize, AlertBank};
use nocalert_bench::{row, Args, Experiment};

fn main() {
    let args = Args::from_env();
    let mut exp = Experiment::from_args(&args);
    exp.sites = args.get("sites", 300);
    let warm: u64 = args.get("warm", 4_000);
    let window: u64 = args.get("window", 8);

    println!("== Fault localization from assertion streams (window = {window} cycles) ==");
    let mut base = Network::new(exp.noc.clone());
    let mut bank0 = AlertBank::new(&exp.noc);
    for _ in 0..warm {
        base.step_observed(&mut bank0);
    }
    assert!(!bank0.any_asserted());

    let sites = exp.site_list();
    let mesh: Mesh = exp.noc.mesh;
    let mut detected = 0usize;
    let mut exact_router = 0usize;
    let mut within_one_hop = 0usize;
    let mut exact_module = 0usize;

    for &site in &sites {
        let mut net = base.clone();
        let mut bank = bank0.clone();
        net.arm_fault(site, FaultKind::Transient, net.cycle());
        for _ in 0..1_500 {
            net.step_observed(&mut bank);
        }
        if !bank.any_asserted() {
            continue;
        }
        detected += 1;
        // `any_asserted()` above guarantees a non-empty stream, but a
        // localization miss should skip the sample, not abort the sweep.
        let Some(d) = localize(bank.assertions(), window) else {
            continue;
        };
        if d.router == site.router {
            exact_router += 1;
            if d.module == Some(site.signal.module()) {
                exact_module += 1;
            }
        }
        if mesh.distance(NodeId(d.router), NodeId(site.router)) <= 1 {
            within_one_hop += 1;
        }
    }

    let pct = |n: usize| format!("{} ({:.1}%)", n, 100.0 * n as f64 / detected.max(1) as f64);
    row("sites sampled", sites.len());
    row("faults producing assertions", detected);
    row("router localized exactly", pct(exact_router));
    row("router within one hop", pct(within_one_hop));
    row("module class also exact", pct(exact_module));
    println!(
        "\nMisses are dominated by faults whose only *illegal* consequence\n\
         manifests downstream (e.g. a misrouted flit tripping a turn checker\n\
         at the neighbour) — the localization is still within one hop."
    );
}
