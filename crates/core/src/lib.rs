//! **NoCAlert** — the core contribution of the MICRO 2012 paper, in Rust.
//!
//! NoCAlert is an on-line, real-time fault-detection mechanism for the
//! control logic of Network-on-Chip routers. It attaches a lightweight
//! *invariance checker* (a combinational hardware assertion) to every
//! control module; a checker flags **illegal outputs** — operational
//! decisions that cannot be produced by any input under the module's
//! functional rules. Table 1 of the paper enumerates 32 such invariances
//! for the canonical five-stage VC router; this crate implements all of
//! them over the wire-level [`noc_types::CycleRecord`]s the simulator
//! emits, plus the network-level end-to-end checker at the NIs.
//!
//! Key properties reproduced here:
//!
//! * checkers observe the same (possibly fault-corrupted) wires the router
//!   logic consumes, and assert **in the same cycle** the illegal value
//!   appears;
//! * checkers are purely observational — they never perturb the network;
//! * invariances 1 and 3 are *low-risk* (Observation 2): the
//!   [`AlertBank::first_detection_cautious`] view defers lone assertions
//!   of those checkers, reproducing the "NoCAlert Cautious" bars of
//!   Figure 6;
//! * invariance 26 (atomic buffers) and 27 (non-atomic) are mutually
//!   exclusive per configuration, as discussed in Section 4.4.
//!
//! # Quickstart
//!
//! ```
//! use noc_sim::Network;
//! use noc_types::{FaultKind, NocConfig, SiteRef};
//! use noc_types::site::SignalKind;
//! use nocalert::AlertBank;
//!
//! let cfg = NocConfig::small_test();
//! let mut net = Network::new(cfg.clone());
//! let mut bank = AlertBank::new(&cfg);
//! net.run(500);
//! // Stick a permanent stuck-bit fault on a routing-computation output
//! // wire; from cycle 500 on, every route computed by router 5's local
//! // input port has bit 1 of its direction flipped.
//! net.arm_fault(
//!     SiteRef { router: 5, port: 4, vc: 0, signal: SignalKind::RcOutDir, bit: 1 },
//!     FaultKind::Permanent,
//!     500,
//! );
//! for _ in 0..2_000 {
//!     net.step_observed(&mut bank);
//! }
//! // NoCAlert notices as soon as traffic exercises the corrupted wire.
//! assert!(net.fault_hits() == 0 || bank.any_asserted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod batched;
pub mod diagnosis;
pub mod predicates;
pub mod table;

pub use bank::{AlertBank, AssertionEvent};
pub use batched::{check_arbiter_lanes, vc_order_violated_lanes, ArbiterLaneCheck};
pub use diagnosis::{localize, Diagnosis};
pub use predicates::{check_arbiter_wires, vc_order_violated, ArbiterCheck};
pub use table::{info, Applicability, Category, CheckerId, CheckerInfo, Risk, TABLE1};
