//! Flits and packets — the units of flow control and routing.
//!
//! Per Section 3.1 of the paper, the network is wormhole-switched: a packet
//! is a worm of flits led by a **header** flit (the only flit that carries
//! routing information and goes through the RC and VA pipeline stages) and
//! closed by a **tail** flit. The paper's network-correctness rules are
//! stated *at the flit level* (Section 4.1), so flits carry enough identity
//! (`packet`, `seq`, a globally unique `uid`) for the golden-reference
//! oracle to detect drops, duplicates, misdeliveries, reorderings and
//! packet mixing.

use crate::geometry::NodeId;
use crate::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique packet identifier (unique per simulation run).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet's worm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit: carries destination, triggers RC and VA.
    Head,
    /// Middle flit: follows the wormhole set up by the header.
    Body,
    /// Last flit: tears the wormhole down.
    Tail,
    /// Single-flit packet: header and tail at once.
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail`.
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail`.
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// 2-bit wire encoding (observed by buffer-state checkers).
    #[inline]
    pub fn bits(self) -> u64 {
        match self {
            FlitKind::Head => 0,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::HeadTail => 3,
        }
    }
}

/// How a flit came to exist.
///
/// The paper observes (Section 4.1) that a faulty read of an "empty" buffer
/// slot forwards stale garbage — *"a new flit may be generated"*. We track
/// provenance so the golden-reference oracle can charge such flits to the
/// **no-new-flit-generation** correctness rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitOrigin {
    /// Injected by a network interface as part of normal traffic.
    Injected,
    /// Fabricated by reading a buffer slot that should have been empty —
    /// physically this re-transmits whatever stale bits the slot held.
    StaleReplay,
}

/// The unit of flow control.
///
/// Fields model the flit's *control overhead* (the payload itself is assumed
/// protected by error-detecting codes, per Section 3.3 of the paper, and is
/// represented only by identity). `corrupted` marks datapath collisions
/// (e.g. a non-one-hot crossbar column ORing two flits together) that the
/// oracle counts as data corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flit {
    /// Globally unique flit identity (never reused within a run).
    pub uid: u64,
    /// Owning packet.
    pub packet: PacketId,
    /// 0-based position within the packet.
    pub seq: u16,
    /// Head/Body/Tail/HeadTail.
    pub kind: FlitKind,
    /// Source node.
    pub src: NodeId,
    /// Destination node (valid on every flit for oracle purposes; hardware
    /// would only carry it in the header).
    pub dest: NodeId,
    /// Protocol-level message class (selects the VC partition).
    pub class: u8,
    /// Cycle at which the packet was handed to the source NI.
    pub injected_at: Cycle,
    /// Provenance: injected traffic or fault-fabricated stale replay.
    pub origin: FlitOrigin,
    /// Set when the flit's contents were damaged by a datapath collision.
    pub corrupted: bool,
}

impl Flit {
    /// True for `Head` and `HeadTail` flits.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.kind.is_head()
    }

    /// True for `Tail` and `HeadTail` flits.
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.kind.is_tail()
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]{:?} {}->{}",
            self.packet, self.seq, self.kind, self.src, self.dest
        )
    }
}

/// Builds the flits of one packet.
///
/// `len == 1` produces a single `HeadTail` flit; longer packets produce
/// `Head`, `Body…`, `Tail`. Flit uids are `first_uid..first_uid + len`.
///
/// # Panics
///
/// Panics if `len == 0`.
///
/// # Example
///
/// ```
/// use noc_types::flit::{make_packet, FlitKind, PacketId};
/// use noc_types::geometry::NodeId;
///
/// let flits = make_packet(PacketId(7), 100, NodeId(0), NodeId(5), 0, 3, 42);
/// assert_eq!(flits.len(), 3);
/// assert_eq!(flits[0].kind, FlitKind::Head);
/// assert_eq!(flits[1].kind, FlitKind::Body);
/// assert_eq!(flits[2].kind, FlitKind::Tail);
/// ```
pub fn make_packet(
    packet: PacketId,
    first_uid: u64,
    src: NodeId,
    dest: NodeId,
    class: u8,
    len: u16,
    injected_at: Cycle,
) -> Vec<Flit> {
    assert!(len > 0, "packet length must be at least one flit");
    (0..len)
        .map(|seq| Flit {
            uid: first_uid + seq as u64,
            packet,
            seq,
            kind: if len == 1 {
                FlitKind::HeadTail
            } else if seq == 0 {
                FlitKind::Head
            } else if seq == len - 1 {
                FlitKind::Tail
            } else {
                FlitKind::Body
            },
            src,
            dest,
            class,
            injected_at,
            origin: FlitOrigin::Injected,
            corrupted: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(FlitKind::Head.is_head() && !FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail() && !FlitKind::Tail.is_head());
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    fn kind_bits_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in [
            FlitKind::Head,
            FlitKind::Body,
            FlitKind::Tail,
            FlitKind::HeadTail,
        ] {
            assert!(seen.insert(k.bits()));
            assert!(k.bits() < 4);
        }
    }

    #[test]
    fn make_packet_structure() {
        let flits = make_packet(PacketId(1), 10, NodeId(0), NodeId(3), 1, 5, 0);
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[4].kind, FlitKind::Tail);
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq as usize, i);
            assert_eq!(f.uid, 10 + i as u64);
            assert_eq!(f.class, 1);
            assert_eq!(f.origin, FlitOrigin::Injected);
            assert!(!f.corrupted);
            if 0 < i && i < 4 {
                assert_eq!(f.kind, FlitKind::Body);
            }
        }
    }

    #[test]
    fn make_packet_single_flit() {
        let flits = make_packet(PacketId(2), 0, NodeId(1), NodeId(2), 0, 1, 9);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].is_head() && flits[0].is_tail());
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn make_packet_zero_len_panics() {
        make_packet(PacketId(0), 0, NodeId(0), NodeId(0), 0, 0, 0);
    }
}
