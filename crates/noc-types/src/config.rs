//! Network and router configuration — the knobs of Section 3.1 / 5.1.
//!
//! The paper's baseline: 8×8 mesh, five-stage pipelined routers
//! (RC → VA → SA → XBAR → LT), four 5-flit-deep VCs per input port,
//! 128-bit links, atomic VC buffers, wormhole switching, credit-based flow
//! control and deterministic XY routing. [`NocConfig::paper_baseline`]
//! returns exactly that; everything is adjustable for the Section 4.4
//! micro-architecture variations (non-atomic buffers, different VC counts,
//! adaptive routing).

use crate::geometry::Mesh;
use serde::{Deserialize, Serialize};

/// Which routing algorithm routers run in their RC units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RoutingAlgorithm {
    /// Deterministic dimension-order routing: X first, then Y. The paper's
    /// evaluation default. Forbids Y→X turns (invariance 1).
    #[default]
    XY,
    /// West-first partially-adaptive turn-model routing: all westward hops
    /// are taken first; afterwards any productive non-west direction may be
    /// chosen (we pick deterministically by congestion-free priority, but
    /// the *legal set* is larger, which relaxes invariances 1/3 exactly as
    /// Section 4.4 discusses).
    WestFirst,
    /// Fault-region routing: table-driven up*/down* routing around
    /// rectangular fault regions maintained online by the containment
    /// layer (DESIGN.md §13). On a healthy mesh no region exists and the
    /// routers fall back to XY bit-identically; once links die, each
    /// router follows per-destination next-hop tables derived from a
    /// spanning-tree rank order, whose single forbidden transition
    /// (down→up) makes any route set deadlock-free by construction. The
    /// static turn model is therefore permissive (only u-turns are
    /// illegal); the full guarantee is region-dependent and is proven
    /// exhaustively by `noc-lint`.
    FaultRegion,
}

impl RoutingAlgorithm {
    /// Every routing algorithm, in declaration order. The `noc-lint`
    /// prover-coverage check (NL218) walks this list, so adding a variant
    /// without extending the prover fails static verification.
    pub const ALL: [RoutingAlgorithm; 3] = [
        RoutingAlgorithm::XY,
        RoutingAlgorithm::WestFirst,
        RoutingAlgorithm::FaultRegion,
    ];
}

/// Atomic vs. non-atomic VC buffers (Section 3.1 / 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BufferPolicy {
    /// A VC buffer may hold flits of a single packet at a time; a header may
    /// only be written into a *free* VC. Enables invariance 26, disables 27.
    #[default]
    Atomic,
    /// Flits of several packets may queue back-to-back (without mixing);
    /// a tail flit must be followed by a header. Enables invariance 27,
    /// disables 26.
    NonAtomic,
}

/// Synthetic traffic patterns for the workload generator.
///
/// The paper's campaign uses uniform random; the rest are the standard
/// synthetic suite used to stress different spatial distributions and are
/// exercised by examples, tests and the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TrafficPattern {
    /// Each packet picks a destination uniformly at random (≠ source).
    #[default]
    UniformRandom,
    /// `(x, y) → (y, x)`.
    Transpose,
    /// `(x, y) → (W-1-x, H-1-y)`.
    BitComplement,
    /// `(x, y) → ((x + W/2) mod W, y)`.
    Tornado,
    /// A fraction of packets target a fixed hotspot node; the rest are
    /// uniform random.
    Hotspot,
    /// Each node sends to its East neighbour (wrapping), a near-neighbour
    /// pattern with minimal contention.
    Neighbor,
}

/// Full configuration of a simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh topology.
    pub mesh: Mesh,
    /// Virtual channels per input port (paper sweeps 2–8; baseline 4).
    pub vcs_per_port: u8,
    /// Buffer depth per VC, in flits (baseline 5).
    pub buffer_depth: u8,
    /// Link width in bits (baseline 128) — only the hardware model cares.
    pub link_width_bits: u16,
    /// Number of protocol message classes; VCs are partitioned evenly among
    /// classes. Must divide `vcs_per_port`.
    pub message_classes: u8,
    /// Flits per packet, per message class (index = class). All packets of a
    /// class have the same length — the premise of invariance 28.
    pub packet_lengths: Vec<u16>,
    /// Atomic or non-atomic VC buffers.
    pub buffer_policy: BufferPolicy,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Speculative pipeline (Section 4.4): VA and SA execute in parallel —
    /// a VC may bid for the switch while its VC allocation is still
    /// pending; the traversal is squashed if allocation fails. Invariance
    /// 17 is relaxed accordingly ("SA success before VA is done" becomes
    /// legal).
    pub speculative: bool,
    /// Traffic pattern.
    pub traffic: TrafficPattern,
    /// Offered load in flits/node/cycle (converted internally to a packet
    /// injection probability).
    pub injection_rate: f64,
    /// Fraction of hotspot traffic when `traffic == Hotspot`.
    pub hotspot_fraction: f64,
    /// Flits the ejection NIC can sink per cycle (baseline 1).
    pub ejection_rate: u8,
    /// Master RNG seed; every stochastic choice derives from it, so two runs
    /// with equal configs produce identical traffic.
    pub seed: u64,
}

impl NocConfig {
    /// The paper's evaluation baseline (Section 5.1): 8×8 mesh, 4 VCs,
    /// 5-flit buffers, 128-bit links, atomic buffers, XY routing, uniform
    /// random traffic.
    pub fn paper_baseline() -> NocConfig {
        NocConfig {
            mesh: Mesh::new(8, 8),
            vcs_per_port: 4,
            buffer_depth: 5,
            link_width_bits: 128,
            message_classes: 2,
            packet_lengths: vec![5, 5],
            buffer_policy: BufferPolicy::Atomic,
            routing: RoutingAlgorithm::XY,
            speculative: false,
            traffic: TrafficPattern::UniformRandom,
            injection_rate: 0.1,
            hotspot_fraction: 0.2,
            ejection_rate: 1,
            seed: 0x0C0A_11E7,
        }
    }

    /// A small 4×4 configuration for fast tests.
    pub fn small_test() -> NocConfig {
        NocConfig {
            mesh: Mesh::new(4, 4),
            ..NocConfig::paper_baseline()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field when a knob is
    /// out of range or fields disagree (e.g. `message_classes` does not
    /// divide `vcs_per_port`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vcs_per_port == 0 || self.vcs_per_port > 16 {
            return Err(ConfigError::new("vcs_per_port must be in 1..=16"));
        }
        if self.buffer_depth == 0 {
            return Err(ConfigError::new("buffer_depth must be non-zero"));
        }
        if self.message_classes == 0 || !self.vcs_per_port.is_multiple_of(self.message_classes) {
            return Err(ConfigError::new(
                "message_classes must be non-zero and divide vcs_per_port",
            ));
        }
        if self.packet_lengths.len() != self.message_classes as usize {
            return Err(ConfigError::new(
                "packet_lengths must have one entry per message class",
            ));
        }
        if self.packet_lengths.contains(&0) {
            return Err(ConfigError::new("packet lengths must be non-zero"));
        }
        if !(0.0..=1.0).contains(&self.injection_rate) {
            return Err(ConfigError::new("injection_rate must be within [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.hotspot_fraction) {
            return Err(ConfigError::new("hotspot_fraction must be within [0, 1]"));
        }
        if self.ejection_rate == 0 {
            return Err(ConfigError::new("ejection_rate must be non-zero"));
        }
        Ok(())
    }

    /// VCs per message class (`vcs_per_port / message_classes`).
    #[inline]
    pub fn vcs_per_class(&self) -> u8 {
        self.vcs_per_port / self.message_classes
    }

    /// The message class a VC index belongs to.
    ///
    /// VCs are partitioned contiguously: with 4 VCs and 2 classes, VCs 0–1
    /// serve class 0 and VCs 2–3 serve class 1. Out-of-range `vc` values
    /// (which a fault can fabricate) are clamped into the last class.
    #[inline]
    pub fn class_of_vc(&self, vc: u8) -> u8 {
        (vc / self.vcs_per_class()).min(self.message_classes - 1)
    }

    /// The VC index range `[lo, hi)` serving a message class.
    #[inline]
    pub fn vc_range_of_class(&self, class: u8) -> (u8, u8) {
        let per = self.vcs_per_class();
        (class * per, (class + 1) * per)
    }

    /// Packet length for a class; out-of-range classes clamp to class 0
    /// (a faulty class field must still map to *some* expected length).
    #[inline]
    pub fn packet_len(&self, class: u8) -> u16 {
        self.packet_lengths
            .get(class as usize)
            .copied()
            .unwrap_or(self.packet_lengths[0])
    }

    /// Bits needed to address a VC (`ceil(log2(vcs_per_port))`, min 1).
    #[inline]
    pub fn vc_bits(&self) -> u8 {
        let mut bits = 1;
        while (1u16 << bits) < self.vcs_per_port as u16 {
            bits += 1;
        }
        bits
    }

    /// Bits needed for one mesh coordinate (`ceil(log2(max(w,h)))`, min 1).
    #[inline]
    pub fn coord_bits(&self) -> u8 {
        let m = self.mesh.width().max(self.mesh.height());
        let mut bits = 1;
        while (1u16 << bits) < m as u16 {
            bits += 1;
        }
        bits
    }
}

/// Error returned by [`NocConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    /// A new validation error with the given description.
    pub fn new(message: &'static str) -> ConfigError {
        ConfigError { message }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid NoC configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid_and_matches_paper() {
        let c = NocConfig::paper_baseline();
        c.validate().unwrap();
        assert_eq!(c.mesh.len(), 64);
        assert_eq!(c.vcs_per_port, 4);
        assert_eq!(c.buffer_depth, 5);
        assert_eq!(c.link_width_bits, 128);
        assert_eq!(c.routing, RoutingAlgorithm::XY);
        assert_eq!(c.buffer_policy, BufferPolicy::Atomic);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut c = NocConfig::paper_baseline();
        c.vcs_per_port = 0;
        assert!(c.validate().is_err());

        let mut c = NocConfig::paper_baseline();
        c.message_classes = 3; // does not divide 4
        assert!(c.validate().is_err());

        let mut c = NocConfig::paper_baseline();
        c.packet_lengths = vec![5]; // one entry, two classes
        assert!(c.validate().is_err());

        let mut c = NocConfig::paper_baseline();
        c.injection_rate = 1.5;
        assert!(c.validate().is_err());

        let mut c = NocConfig::paper_baseline();
        c.buffer_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn vc_class_partition() {
        let c = NocConfig::paper_baseline();
        assert_eq!(c.vcs_per_class(), 2);
        assert_eq!(c.class_of_vc(0), 0);
        assert_eq!(c.class_of_vc(1), 0);
        assert_eq!(c.class_of_vc(2), 1);
        assert_eq!(c.class_of_vc(3), 1);
        // Fault-fabricated out-of-range VC clamps.
        assert_eq!(c.class_of_vc(250), 1);
        assert_eq!(c.vc_range_of_class(0), (0, 2));
        assert_eq!(c.vc_range_of_class(1), (2, 4));
    }

    #[test]
    fn bit_widths() {
        let c = NocConfig::paper_baseline();
        assert_eq!(c.vc_bits(), 2);
        assert_eq!(c.coord_bits(), 3);

        let mut c2 = c.clone();
        c2.vcs_per_port = 8;
        c2.message_classes = 2;
        c2.packet_lengths = vec![5, 5];
        assert_eq!(c2.vc_bits(), 3);
    }
}
