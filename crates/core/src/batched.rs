//! Lane-parallel (bit-plane) forms of the checker predicates.
//!
//! The scalar predicates in [`crate::predicates`] stay the single source
//! of truth — the static prover and the diagnosis pass keep calling them
//! directly. This module adds *batched* evaluations that compute the same
//! predicate for up to [`LANES`] wire instances in one pass over
//! bit-transposed [`SignalPlane`]s: each scalar AND/OR/XOR over wire bits
//! becomes the same operation over whole `u64` planes, so one record's
//! worth of arbiter events (or VC-state events) costs a handful of wide
//! ops instead of a per-event function call.
//!
//! Equivalence is not assumed: `noc-lint`'s pass-2 prover enumerates the
//! full single-lane input space of every batched predicate against its
//! scalar original (see `prove_batched_lanes` in `nocalert-analysis`),
//! and the packers below return `None` for any instance that cannot be
//! packed (value wider than the plane, more instances than lanes), in
//! which case the checker bank evaluates that instance with the scalar
//! predicate — the batched path is an optimisation, never a semantic
//! fork.

use crate::predicates::ArbiterCheck;
use noc_types::bitlanes::{BitLanes, SignalPlane, LANES};

/// Width of the widest arbiter request/grant vector that can be packed
/// into lanes. Physical arbiters in the five-port router have at most 8
/// requesters (`ports + vcs` ≤ 8 in every supported configuration), so
/// wires always fit; wider (fault-impossible) values fall back to the
/// scalar predicate via the packer's `None`.
pub const ARB_WIDTH: usize = 8;

/// Per-lane results of the three arbiter invariances (Table 1: 4, 5, 6)
/// evaluated over all lanes at once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterLaneCheck {
    /// Lanes where a grant bit is set outside the request vector (inv 4).
    pub grant_without_request: BitLanes,
    /// Lanes with requests pending but no grant issued (inv 5).
    pub grant_to_nobody: BitLanes,
    /// Lanes with more than one grant bit set (inv 6).
    pub multiple_grants: BitLanes,
}

impl ArbiterLaneCheck {
    /// Gathers lane `l` back into the scalar result struct.
    #[inline]
    pub fn lane(&self, l: usize) -> ArbiterCheck {
        ArbiterCheck {
            grant_without_request: self.grant_without_request.get(l),
            grant_to_nobody: self.grant_to_nobody.get(l),
            multiple_grants: self.multiple_grants.get(l),
        }
    }
}

/// Evaluates invariances 4/5/6 for up to 64 arbiters in one pass.
///
/// Lane-by-lane equivalent to [`crate::predicates::check_arbiter_wires`]:
/// `grant_without_request` ORs `grant & !req` across the bit-planes,
/// `grant_to_nobody` is "some request plane set, no grant plane set", and
/// `multiple_grants` uses a carry-save pair (`seen_one`/`seen_two`) to
/// detect a second grant bit without per-lane popcounts. Unloaded lanes
/// read as `req = grant = 0` and are silent, exactly like the scalar
/// predicate on zero wires.
#[inline]
pub fn check_arbiter_lanes(
    req: &SignalPlane<ARB_WIDTH>,
    grant: &SignalPlane<ARB_WIDTH>,
) -> ArbiterLaneCheck {
    let mut gwr = 0u64;
    let mut any_req = 0u64;
    let mut any_grant = 0u64;
    let mut seen_one = 0u64;
    let mut seen_two = 0u64;
    for b in 0..ARB_WIDTH {
        let r = req.plane(b);
        let g = grant.plane(b);
        gwr |= g & !r;
        any_req |= r;
        any_grant |= g;
        seen_two |= seen_one & g;
        seen_one |= g;
    }
    ArbiterLaneCheck {
        grant_without_request: BitLanes(gwr),
        grant_to_nobody: BitLanes(any_req & !any_grant),
        multiple_grants: BitLanes(seen_two),
    }
}

/// Evaluates invariance 17 (VC pipeline-event ordering) for up to 64 VCs
/// in one pass; lane-by-lane equivalent to
/// [`crate::predicates::vc_order_violated`].
///
/// `state` holds each lane's 2-bit state register *before* the events
/// apply; `ev_*` mark the lanes whose VC saw that pipeline event this
/// cycle. Returns the lanes where the combination is illegal.
#[inline]
pub fn vc_order_violated_lanes(
    state: &SignalPlane<2>,
    ev_rc_done: BitLanes,
    ev_va_done: BitLanes,
    ev_sa_won: BitLanes,
    speculative: bool,
) -> BitLanes {
    let s0 = state.plane(0);
    let s1 = state.plane(1);
    let is1 = s0 & !s1; // state == 1 (ROUTING)
    let is2 = !s0 & s1; // state == 2 (VA_PENDING)
    let is3 = s0 & s1; // state == 3 (ACTIVE)
    let sa_ok = if speculative { is3 | is2 } else { is3 };
    BitLanes((ev_rc_done.0 & !is1) | (ev_va_done.0 & !is2) | (ev_sa_won.0 & !sa_ok))
}

/// Packs one cycle record's arbiter `(req, grant)` events into lanes and
/// evaluates invariances 4/5/6 for all of them with a single
/// [`check_arbiter_lanes`] pass.
///
/// Usage is strictly positional: push every event in record order, call
/// [`ArbiterPack::evaluate`], then query [`ArbiterPackResult::lane`] with
/// the same running index while re-walking the events. An event that
/// could not be packed (wires wider than [`ARB_WIDTH`] bits, or more
/// events than [`LANES`]) yields `None` and must be evaluated with the
/// scalar predicate on its raw wires — impossible for physical records
/// (≤ ~26 arbiter events of ≤ 8 bits each) but kept total so the batched
/// path never silently diverges from the scalar one.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArbiterPack {
    req: SignalPlane<ARB_WIDTH>,
    grant: SignalPlane<ARB_WIDTH>,
    packed: u64,
    pushed: usize,
}

impl ArbiterPack {
    /// An empty pack.
    #[inline]
    pub fn new() -> ArbiterPack {
        ArbiterPack::default()
    }

    /// Appends the next event's wires (lane = current push index).
    #[inline]
    pub fn push(&mut self, req: u64, grant: u64) {
        let i = self.pushed;
        self.pushed += 1;
        if i < LANES && self.req.set_lane(i, req) && self.grant.set_lane(i, grant) {
            self.packed |= 1u64 << i;
        }
    }

    /// Number of events pushed so far (packed or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// True when nothing has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Runs the wide predicate once over every packed lane.
    #[inline]
    pub fn evaluate(&self) -> ArbiterPackResult {
        ArbiterPackResult {
            wide: check_arbiter_lanes(&self.req, &self.grant),
            packed: self.packed,
        }
    }
}

/// Result of [`ArbiterPack::evaluate`]: per-event lane verdicts.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterPackResult {
    wide: ArbiterLaneCheck,
    packed: u64,
}

impl ArbiterPackResult {
    /// The verdict for push #`i`, or `None` when that event was not
    /// packed and the caller must evaluate the scalar predicate on the
    /// event's raw wires.
    #[inline]
    pub fn lane(&self, i: usize) -> Option<ArbiterCheck> {
        if i < LANES && (self.packed >> i) & 1 == 1 {
            Some(self.wide.lane(i))
        } else {
            None
        }
    }
}

/// Packs one cycle record's VC-state events and evaluates invariance 17
/// for all of them with a single [`vc_order_violated_lanes`] pass.
///
/// Positional protocol identical to [`ArbiterPack`]. The state register
/// is 2 bits wide by construction, so packing only fails past 64 events
/// (ports × vcs can exceed that on large configurations — those events
/// fall back to the scalar predicate).
#[derive(Debug, Clone, Copy, Default)]
pub struct VcOrderPack {
    state: SignalPlane<2>,
    ev_rc: BitLanes,
    ev_va: BitLanes,
    ev_sa: BitLanes,
    packed: u64,
    pushed: usize,
}

impl VcOrderPack {
    /// An empty pack.
    #[inline]
    pub fn new() -> VcOrderPack {
        VcOrderPack::default()
    }

    /// Appends the next VC event's state and pipeline-event bits.
    #[inline]
    pub fn push(&mut self, state: u64, ev_rc_done: bool, ev_va_done: bool, ev_sa_won: bool) {
        let i = self.pushed;
        self.pushed += 1;
        if i < LANES && self.state.set_lane(i, state) {
            if ev_rc_done {
                self.ev_rc.set(i);
            }
            if ev_va_done {
                self.ev_va.set(i);
            }
            if ev_sa_won {
                self.ev_sa.set(i);
            }
            self.packed |= 1u64 << i;
        }
    }

    /// Number of events pushed so far (packed or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// True when nothing has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Runs the wide predicate once over every packed lane.
    #[inline]
    pub fn evaluate(&self, speculative: bool) -> VcOrderPackResult {
        VcOrderPackResult {
            fired: vc_order_violated_lanes(
                &self.state,
                self.ev_rc,
                self.ev_va,
                self.ev_sa,
                speculative,
            ),
            packed: self.packed,
        }
    }
}

/// Result of [`VcOrderPack::evaluate`]: per-event lane verdicts.
#[derive(Debug, Clone, Copy)]
pub struct VcOrderPackResult {
    fired: BitLanes,
    packed: u64,
}

impl VcOrderPackResult {
    /// Whether invariance 17 fired for push #`i`, or `None` when that
    /// event was not packed (caller evaluates the scalar predicate).
    #[inline]
    pub fn lane(&self, i: usize) -> Option<bool> {
        if i < LANES && (self.packed >> i) & 1 == 1 {
            Some(self.fired.get(i))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{check_arbiter_wires, vc_order_violated};

    #[test]
    fn mixed_lane_load_matches_scalar() {
        let cases: [(u64, u64); 6] = [
            (0, 0),
            (0b1010, 0b0010),
            (0b1010, 0b0100),
            (0b1010, 0),
            (0b1111, 0b0110),
            (0xff, 0x81),
        ];
        let mut pack = ArbiterPack::new();
        for &(r, g) in &cases {
            pack.push(r, g);
        }
        let res = pack.evaluate();
        for (i, &(r, g)) in cases.iter().enumerate() {
            assert_eq!(res.lane(i), Some(check_arbiter_wires(r, g)), "case {i}");
        }
        // Unpushed lanes read as not-packed.
        assert!(res.lane(cases.len()).is_none());
    }

    #[test]
    fn overwide_event_falls_back_without_corrupting_neighbours() {
        let mut pack = ArbiterPack::new();
        pack.push(0b11, 0b01);
        pack.push(1 << 9, 1 << 9); // 10-bit wires: cannot pack
        pack.push(0b10, 0b01);
        let res = pack.evaluate();
        assert_eq!(res.lane(0), Some(check_arbiter_wires(0b11, 0b01)));
        assert!(res.lane(1).is_none(), "overwide event must defer to scalar");
        assert_eq!(res.lane(2), Some(check_arbiter_wires(0b10, 0b01)));
    }

    #[test]
    fn pack_overflow_past_64_events_defers_to_scalar() {
        let mut pack = ArbiterPack::new();
        for _ in 0..70 {
            pack.push(0b1, 0b1);
        }
        assert_eq!(pack.len(), 70);
        let res = pack.evaluate();
        assert_eq!(res.lane(63), Some(check_arbiter_wires(0b1, 0b1)));
        assert!(res.lane(64).is_none());
        assert!(res.lane(69).is_none());
    }

    #[test]
    fn vc_pack_matches_scalar_for_all_single_events() {
        for speculative in [false, true] {
            let mut pack = VcOrderPack::new();
            let mut expect = Vec::new();
            for state in 0..4u64 {
                for ev in 0..8u8 {
                    let (rc, va, sa) = (ev & 1 != 0, ev & 2 != 0, ev & 4 != 0);
                    pack.push(state, rc, va, sa);
                    expect.push(vc_order_violated(state, rc, va, sa, speculative));
                }
            }
            let res = pack.evaluate(speculative);
            for (i, &want) in expect.iter().enumerate() {
                assert_eq!(res.lane(i), Some(want), "case {i} spec={speculative}");
            }
        }
    }

    #[test]
    fn wide_predicates_silent_on_empty_planes() {
        let res = check_arbiter_lanes(&SignalPlane::new(), &SignalPlane::new());
        assert!(res.grant_without_request.is_empty());
        assert!(res.grant_to_nobody.is_empty());
        assert!(res.multiple_grants.is_empty());
        let fired = vc_order_violated_lanes(
            &SignalPlane::new(),
            BitLanes::EMPTY,
            BitLanes::EMPTY,
            BitLanes::EMPTY,
            true,
        );
        assert!(fired.is_empty());
    }
}
