//! Pure ARQ decision functions — the transport's control plane as data.
//!
//! Every control decision the NIC-level ARQ makes (DESIGN.md §11) is
//! factored here as a **pure function** over explicit inputs. The
//! simulator's [`crate::transport::Transport`] calls these functions to
//! decide; the model checker (`nocalert-analysis`' `mc` pass) calls the
//! *same* functions to explore the recovery-plane state space. There is no
//! parallel reimplementation to drift: a behaviour change here changes
//! both the simulation and the proof obligation at once, and the
//! `arq_equivalence` test pins the transport to this module against
//! recorded traces.
//!
//! The three decision points:
//!
//! * **Receiver, assembled data packet** — deliver/ack, suppress/re-ack a
//!   duplicate, or NACK a corrupted copy ([`receiver_data_action`]).
//! * **Sender, returned control packet** — an ACK completes the message, a
//!   NACK schedules an immediate retransmit ([`sender_control_action`]).
//! * **Sender, expired retransmission timer** — retransmit with
//!   exponential backoff, or give up after the retry budget, recording a
//!   failure only if the message is not known delivered
//!   ([`sender_timeout_action`]).

use crate::transport::ArqConfig;
use noc_types::Cycle;

/// What the receiver does with a fully assembled **data** packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverAction {
    /// First clean arrival: hand to the application, mark the dedup
    /// window, and send an ACK.
    DeliverAndAck,
    /// Late duplicate (a retransmit raced the ACK): suppress the payload
    /// but re-acknowledge so the sender stops.
    SuppressAndReAck,
    /// The copy arrived damaged: NACK to trigger an immediate resend.
    Nack,
}

/// Receiver-side decision for an assembled data packet.
///
/// `already_delivered` is the dedup-window mark for the application
/// message; `corrupted` is the EDC verdict on this wire copy. Note the
/// precedence: a *corrupted duplicate* is still re-ACKed — the payload
/// already reached the application, so identity is all that matters.
#[inline]
pub fn receiver_data_action(already_delivered: bool, corrupted: bool) -> ReceiverAction {
    if already_delivered {
        ReceiverAction::SuppressAndReAck
    } else if corrupted {
        ReceiverAction::Nack
    } else {
        ReceiverAction::DeliverAndAck
    }
}

/// What the data sender does with a returned control packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderControlAction {
    /// ACK: the message is done; drop the pending entry and stop the
    /// timer. A corrupted ACK still completes — its identity carries the
    /// information; real hardware would checksum-drop it and the next
    /// retransmission round would absorb the loss identically.
    Complete,
    /// NACK: the path demonstrably delivers, the copy was just damaged —
    /// expire the timer now and retransmit immediately.
    RetransmitNow,
}

/// Sender-side decision for an arrived control packet (`nack` selects
/// between the two control kinds).
#[inline]
pub fn sender_control_action(nack: bool) -> SenderControlAction {
    if nack {
        SenderControlAction::RetransmitNow
    } else {
        SenderControlAction::Complete
    }
}

/// What the data sender does when a retransmission timer expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderTimeoutAction {
    /// Retry budget left: send another wire copy.
    Retransmit {
        /// The attempt counter after this retransmission.
        next_attempts: u32,
        /// Timer distance for the new attempt (exponential backoff,
        /// capped — `ArqConfig::timeout_after(next_attempts)`).
        backoff: Cycle,
    },
    /// Budget exhausted: stop retrying. `record_failure` is set when the
    /// message is not known delivered — a delivered message whose ACKs
    /// all died is simply closed without a failure record (the
    /// exactly-once oracle counts deliveries, not ACK luck).
    GiveUp {
        /// Whether a [`crate::transport::FailureRecord`] must be emitted.
        record_failure: bool,
    },
}

/// Sender-side decision at timer expiry: `attempts` wire copies beyond the
/// first have been sent, `delivered` is the receiver-side dedup mark as
/// visible to the (co-located, in-simulation) transport model.
#[inline]
pub fn sender_timeout_action(
    arq: &ArqConfig,
    attempts: u32,
    delivered: bool,
) -> SenderTimeoutAction {
    if attempts >= arq.max_retries {
        SenderTimeoutAction::GiveUp {
            record_failure: !delivered,
        }
    } else {
        let next_attempts = attempts + 1;
        SenderTimeoutAction::Retransmit {
            next_attempts,
            backoff: arq.timeout_after(next_attempts),
        }
    }
}

/// One logged ARQ decision with the exact inputs it was made from —
/// recorded by the transport when the decision log is enabled, and
/// replayed by the `arq_equivalence` test to pin the simulator to the
/// pure functions above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArqDecision {
    /// A receiver decision on an assembled data packet.
    Data {
        /// Dedup-window mark at decision time.
        already_delivered: bool,
        /// EDC verdict on the wire copy.
        corrupted: bool,
        /// The action taken.
        action: ReceiverAction,
    },
    /// A sender decision on a returned control packet.
    Control {
        /// True for NACK, false for ACK.
        nack: bool,
        /// The action taken.
        action: SenderControlAction,
    },
    /// A sender decision at timer expiry.
    Timeout {
        /// Attempt counter at decision time.
        attempts: u32,
        /// Receiver-side dedup mark at decision time.
        delivered: bool,
        /// The action taken.
        action: SenderTimeoutAction,
        /// Whether a `Retransmit` was actually carried out (injection can
        /// be refused under backpressure; the timer then re-fires with
        /// unchanged state on a later cycle).
        applied: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_precedence_duplicate_beats_corruption() {
        assert_eq!(
            receiver_data_action(true, true),
            ReceiverAction::SuppressAndReAck
        );
        assert_eq!(receiver_data_action(false, true), ReceiverAction::Nack);
        assert_eq!(
            receiver_data_action(false, false),
            ReceiverAction::DeliverAndAck
        );
    }

    #[test]
    fn timeout_gives_up_exactly_at_budget() {
        let arq = ArqConfig::default_policy();
        match sender_timeout_action(&arq, arq.max_retries - 1, false) {
            SenderTimeoutAction::Retransmit {
                next_attempts,
                backoff,
            } => {
                assert_eq!(next_attempts, arq.max_retries);
                assert_eq!(backoff, arq.timeout_after(arq.max_retries));
            }
            other => panic!("expected retransmit, got {other:?}"),
        }
        assert_eq!(
            sender_timeout_action(&arq, arq.max_retries, false),
            SenderTimeoutAction::GiveUp {
                record_failure: true
            }
        );
        assert_eq!(
            sender_timeout_action(&arq, arq.max_retries, true),
            SenderTimeoutAction::GiveUp {
                record_failure: false
            }
        );
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let arq = ArqConfig::default_policy();
        let mut prev = 0;
        for a in 1..=arq.max_retries {
            if let SenderTimeoutAction::Retransmit { backoff, .. } =
                sender_timeout_action(&arq, a - 1, false)
            {
                assert!(backoff >= prev, "backoff must be monotone");
                assert!(backoff <= arq.timeout_after(arq.backoff_cap + 1));
                prev = backoff;
            }
        }
    }
}
