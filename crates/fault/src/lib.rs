//! Fault model and injection framework (Section 5.2 / Figure 5).
//!
//! The paper injects **single-bit, single-event transient faults** at the
//! inputs and outputs of every control module of every router — 205
//! locations per interior 5-port router, 11,808 in the 8×8 mesh at their
//! module granularity (our signal catalogue is finer-grained; see
//! EXPERIMENTS.md for the measured counts). This crate provides:
//!
//! * [`FaultSpec`] — one injection: a site, a temporal kind (transient /
//!   permanent / intermittent) and a start cycle;
//! * [`enumerate_sites`] — the exhaustive campaign universe;
//! * [`sample`] — deterministic sub-sampling (stride / seeded random) so
//!   laptop-scale runs sweep a representative subset and `--full` runs the
//!   whole universe;
//! * [`rollout`] — execute one injection from a warmed-up network
//!   snapshot and report whether the network drained and whether the
//!   armed bit ever flipped a live wire.
//!
//! # Example
//!
//! ```
//! use nocalert_fault::{enumerate_sites, rollout, FaultSpec};
//! use noc_sim::{Network, NullObserver};
//! use noc_types::{FaultKind, NocConfig};
//!
//! let cfg = NocConfig::small_test();
//! let sites = enumerate_sites(&cfg);
//! let mut net = Network::new(cfg);
//! net.run(200); // warm up
//! let spec = FaultSpec::transient(sites[0], net.cycle());
//! let outcome = rollout(&mut net, Some(&spec), 300, 5_000, &mut NullObserver);
//! assert!(outcome.drained || !outcome.drained); // campaign classifies this
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_sim::{Network, Observer};
use noc_types::geometry::{Direction, NodeId};
use noc_types::site::{FaultKind, SiteRef};
use noc_types::{Cycle, NocConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One fault injection: where, how, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The wire bit to corrupt.
    pub site: SiteRef,
    /// Temporal behaviour.
    pub kind: FaultKind,
    /// Injection cycle.
    pub start: Cycle,
}

impl FaultSpec {
    /// Checks the spec for temporal malformations a campaign should
    /// reject up front rather than crash on mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`noc_types::SimError::FaultSpecInvalid`] for an
    /// intermittent fault with a zero period (its activity pattern is
    /// undefined — evaluating it divides by zero), with a zero duty
    /// (never active: a vacuous injection a campaign should reject rather
    /// than silently classify as benign), or with a duty exceeding the
    /// period (equivalent to a permanent fault and almost certainly a
    /// misconfiguration).
    pub fn validate(&self) -> Result<(), noc_types::SimError> {
        if let FaultKind::Intermittent { period, duty } = self.kind {
            let reason = if period == 0 {
                Some("intermittent fault period must be non-zero")
            } else if duty == 0 {
                Some("intermittent fault duty must be non-zero (never active)")
            } else if duty > period {
                Some("intermittent fault duty must not exceed its period")
            } else {
                None
            };
            if let Some(reason) = reason {
                return Err(noc_types::SimError::FaultSpecInvalid {
                    site: self.site,
                    reason,
                });
            }
        }
        Ok(())
    }

    /// Checks the spec against a live network: temporal validity
    /// ([`FaultSpec::validate`]) plus *physical existence* of the site —
    /// the router must be in the mesh, the port must be a live wire of
    /// that router (edge routers have no north-of-north link), the VC and
    /// bit indices must address an instance that exists under the
    /// configuration — and the router must not already be quarantined by
    /// the containment plane. Each rejection is a structured error: a
    /// campaign cell whose fault could never flip a live wire (or whose
    /// alerts containment would discard as stale fallout from an
    /// already-dead router) must fail loudly, not be silently classified
    /// as benign.
    ///
    /// # Errors
    ///
    /// Returns [`noc_types::SimError::SiteOutOfMesh`] or
    /// [`noc_types::SimError::FaultSpecInvalid`] naming the offending
    /// coordinate.
    pub fn validate_in(&self, net: &Network) -> Result<(), noc_types::SimError> {
        self.validate()?;
        let cfg = net.config();
        let routers = cfg.mesh.len() as u16;
        if self.site.router >= routers {
            return Err(noc_types::SimError::SiteOutOfMesh {
                site: self.site,
                routers,
            });
        }
        let node = NodeId(self.site.router);
        let fail = |reason: &'static str| {
            Err(noc_types::SimError::FaultSpecInvalid {
                site: self.site,
                reason,
            })
        };
        let Some(&dir) = Direction::ALL.get(self.site.port as usize) else {
            return fail("site port index exceeds the router's port count");
        };
        if !cfg.mesh.port_live(node, dir) {
            return fail("site targets a dead edge port (no such wire at this router)");
        }
        if self.site.signal.module().per_vc() {
            if self.site.vc >= cfg.vcs_per_port {
                return fail("site VC index exceeds the configured VCs per port");
            }
        } else if self.site.vc != 0 {
            return fail("site addresses a VC of a module that has one instance per port");
        }
        if !noc_sim::live_bits(cfg, node, self.site.port, self.site.signal).contains(&self.site.bit)
        {
            return fail("site bit is not a live wire of the signal at this router");
        }
        if net.router_quarantined(self.site.router) {
            return fail("site router is quarantined (its alerts are stale fallout)");
        }
        Ok(())
    }

    /// A single-event transient at `site`, active during `start` only —
    /// the paper's campaign fault.
    pub fn transient(site: SiteRef, start: Cycle) -> FaultSpec {
        FaultSpec {
            site,
            kind: FaultKind::Transient,
            start,
        }
    }

    /// A stuck-bit permanent fault from `start` onward (Observation 3).
    pub fn permanent(site: SiteRef, start: Cycle) -> FaultSpec {
        FaultSpec {
            site,
            kind: FaultKind::Permanent,
            start,
        }
    }

    /// A classical stuck-at defect: the wire is forced to `level` (0 or 1)
    /// from `start` onward. These are the hard faults the recovery
    /// subsystem (DESIGN.md §11) is built to survive.
    pub fn stuck_at(site: SiteRef, level: bool, start: Cycle) -> FaultSpec {
        FaultSpec {
            site,
            kind: if level {
                FaultKind::StuckAt1
            } else {
                FaultKind::StuckAt0
            },
            start,
        }
    }

    /// An intermittent fault: flipped for the first `duty` cycles of every
    /// `period`-cycle window from `start` onward. Callers should
    /// [`FaultSpec::validate`] the result before running a campaign on it.
    pub fn intermittent(site: SiteRef, period: u32, duty: u32, start: Cycle) -> FaultSpec {
        FaultSpec {
            site,
            kind: FaultKind::Intermittent { period, duty },
            start,
        }
    }
}

/// The exhaustive fault-site universe for a configuration: every bit of
/// every module-boundary wire of every router (dead ports excluded).
pub fn enumerate_sites(cfg: &NocConfig) -> Vec<SiteRef> {
    noc_sim::enumerate_all_sites(cfg)
}

/// Deterministic site sub-sampling strategies for laptop-scale campaigns.
pub mod sample {
    use super::*;

    /// Every `k`-th site, `k = ceil(len / n)` — uniform structural
    /// coverage with at most `n` sites.
    pub fn stride(sites: &[SiteRef], n: usize) -> Vec<SiteRef> {
        if n == 0 || sites.is_empty() {
            return Vec::new();
        }
        if n >= sites.len() {
            return sites.to_vec();
        }
        let k = sites.len().div_ceil(n);
        sites.iter().copied().step_by(k).collect()
    }

    /// `n` sites drawn without replacement with a seeded RNG (stable
    /// across runs and platforms).
    pub fn random(sites: &[SiteRef], n: usize, seed: u64) -> Vec<SiteRef> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut v = sites.to_vec();
        v.shuffle(&mut rng);
        v.truncate(n);
        v.sort_unstable();
        v
    }
}

/// Result of one [`rollout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutOutcome {
    /// The network emptied completely within the drain deadline.
    pub drained: bool,
    /// Times the armed bit flipped a live wire (0 ⇒ the injection was
    /// vacuous: the wire was never evaluated while the fault was active).
    pub fault_hits: u64,
    /// Cycle at which the rollout stopped.
    pub end_cycle: Cycle,
}

/// Executes one injection experiment on `net` (typically a clone of a
/// warmed-up golden snapshot):
///
/// 1. arms `spec` (if any) and runs `active_window` cycles of live traffic,
/// 2. stops packet generation and drains for at most `drain_deadline`
///    cycles,
/// 3. reports drain status and fault-hit count.
///
/// The observer sees every cycle record, injection and ejection — attach
/// the NoCAlert bank / ForEVeR / run logs here.
pub fn rollout<O: Observer>(
    net: &mut Network,
    spec: Option<&FaultSpec>,
    active_window: Cycle,
    drain_deadline: Cycle,
    obs: &mut O,
) -> RolloutOutcome {
    if let Some(s) = spec {
        net.arm_fault(s.site, s.kind, s.start);
    } else {
        net.disarm_fault();
    }
    for _ in 0..active_window {
        net.step_observed(obs);
    }
    let drained = net.drain(obs, drain_deadline);
    RolloutOutcome {
        drained,
        fault_hits: net.fault_hits(),
        end_cycle: net.cycle(),
    }
}

/// Hang-detection policy for [`rollout_watched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watchdog {
    /// Hard ceiling on total cycles the rollout may consume (active window
    /// plus drain), regardless of progress. `u64::MAX` disables it.
    pub cycle_budget: Cycle,
    /// During the drain phase, declare a hang once the network's progress
    /// signature (injected/forwarded/ejected counters) has been unchanged
    /// for this many consecutive cycles. Catches true deadlocks long
    /// before the drain deadline; a livelock keeps the counters moving
    /// and falls through to the drain deadline instead.
    pub stall_window: Cycle,
}

impl Watchdog {
    /// A generous default: stall detection after 2,000 idle cycles, no
    /// practical cycle ceiling.
    pub fn default_policy() -> Watchdog {
        Watchdog {
            cycle_budget: u64::MAX,
            stall_window: 2_000,
        }
    }

    /// Checks the policy for values a campaign CLI should reject up front.
    ///
    /// A zero cycle budget terminates every rollout before its first
    /// cycle; a zero stall window declares every drain phase hung on its
    /// first check. Both are legal to *construct* (tests use them to
    /// exercise the trip paths deterministically) but are always operator
    /// errors when they arrive via `--cycle-budget` / `--stall-window`.
    ///
    /// # Errors
    ///
    /// Returns [`noc_types::SimError::WatchdogInvalid`] naming the
    /// offending threshold.
    pub fn validate(&self) -> Result<(), noc_types::SimError> {
        if self.cycle_budget == 0 {
            return Err(noc_types::SimError::WatchdogInvalid {
                reason: "cycle budget must be non-zero",
            });
        }
        if self.stall_window == 0 {
            return Err(noc_types::SimError::WatchdogInvalid {
                reason: "drain stall window must be non-zero",
            });
        }
        Ok(())
    }
}

/// Why the watchdog terminated a rollout early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HangKind {
    /// The total cycle budget was exhausted.
    CycleBudget,
    /// No flit moved anywhere for the watchdog's stall window during
    /// drain — a wedged network (deadlock or total loss of liveness).
    NoProgress,
}

/// A watchdog trip: what fired and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hang {
    /// Which criterion fired.
    pub kind: HangKind,
    /// Cycle at which the rollout was terminated.
    pub at_cycle: Cycle,
    /// Consecutive progress-free cycles observed at termination (only
    /// meaningful for [`HangKind::NoProgress`]).
    pub stalled_for: Cycle,
}

/// Result of one [`rollout_watched`]: the ordinary outcome plus an
/// optional watchdog trip. When `hang` is `Some`, `outcome.drained` is
/// `false` and the observer saw every cycle up to the termination point,
/// so oracle comparison still works on the truncated log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchedOutcome {
    /// Drain status, fault hits and end cycle, as from [`rollout`].
    pub outcome: RolloutOutcome,
    /// The watchdog trip, if one terminated the rollout early.
    pub hang: Option<Hang>,
}

/// [`rollout`] under a [`Watchdog`]: identical semantics on healthy runs
/// (bit-identical outcome and observer stream), deterministic early
/// termination on hung ones.
///
/// The active window always runs to completion (traffic is still being
/// generated, so "no progress" is not meaningful there beyond the cycle
/// budget); stall detection applies to the drain phase, where a healthy
/// network must keep moving flits until empty.
pub fn rollout_watched<O: Observer>(
    net: &mut Network,
    spec: Option<&FaultSpec>,
    active_window: Cycle,
    drain_deadline: Cycle,
    dog: Watchdog,
    obs: &mut O,
) -> WatchedOutcome {
    if let Some(s) = spec {
        net.arm_fault(s.site, s.kind, s.start);
    } else {
        net.disarm_fault();
    }
    let start = net.cycle();
    let budget_end = start.saturating_add(dog.cycle_budget);
    let mut hang = None;

    for _ in 0..active_window {
        if net.cycle() >= budget_end {
            hang = Some(Hang {
                kind: HangKind::CycleBudget,
                at_cycle: net.cycle(),
                stalled_for: 0,
            });
            break;
        }
        net.step_observed(obs);
    }

    let mut drained = false;
    if hang.is_none() {
        net.set_injection_enabled(false);
        let drain_end = net.cycle() + drain_deadline;
        let mut sig = net.progress_signature();
        let mut stalled: Cycle = 0;
        loop {
            if net.is_drained() {
                drained = true;
                break;
            }
            if net.cycle() >= drain_end {
                break; // classic drain-deadline expiry, not a watchdog trip
            }
            if net.cycle() >= budget_end {
                hang = Some(Hang {
                    kind: HangKind::CycleBudget,
                    at_cycle: net.cycle(),
                    stalled_for: stalled,
                });
                break;
            }
            if stalled >= dog.stall_window {
                hang = Some(Hang {
                    kind: HangKind::NoProgress,
                    at_cycle: net.cycle(),
                    stalled_for: stalled,
                });
                break;
            }
            net.step_observed(obs);
            let now = net.progress_signature();
            if now == sig {
                stalled += 1;
            } else {
                sig = now;
                stalled = 0;
            }
        }
    }

    WatchedOutcome {
        outcome: RolloutOutcome {
            drained,
            fault_hits: net.fault_hits(),
            end_cycle: net.cycle(),
        },
        hang,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NullObserver;

    #[test]
    fn universe_is_nonempty_and_unique() {
        let cfg = NocConfig::small_test();
        let sites = enumerate_sites(&cfg);
        assert!(sites.len() > 1_000, "got {}", sites.len());
        let mut dedup = sites.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sites.len());
    }

    #[test]
    fn stride_sampling_bounds_and_coverage() {
        let cfg = NocConfig::small_test();
        let sites = enumerate_sites(&cfg);
        let s = sample::stride(&sites, 100);
        assert!(s.len() <= 100 && s.len() > 80);
        // First and (near-)last structural regions are represented.
        assert_eq!(s[0], sites[0]);
        assert!(s.last().unwrap().router >= sites.last().unwrap().router / 2);
        assert!(sample::stride(&sites, 0).is_empty());
        assert_eq!(sample::stride(&sites, usize::MAX).len(), sites.len());
    }

    #[test]
    fn random_sampling_is_deterministic() {
        let cfg = NocConfig::small_test();
        let sites = enumerate_sites(&cfg);
        let a = sample::random(&sites, 50, 42);
        let b = sample::random(&sites, 50, 42);
        let c = sample::random(&sites, 50, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn validate_in_accepts_every_enumerated_site() {
        let cfg = NocConfig::small_test();
        let net = Network::new(cfg.clone());
        // The enumeration universe is, by construction, exactly the set of
        // live wires — every member must pass the existence check.
        for site in enumerate_sites(&cfg) {
            FaultSpec::transient(site, 10)
                .validate_in(&net)
                .expect("enumerated site must validate");
        }
    }

    #[test]
    fn validate_in_rejects_phantom_sites() {
        use noc_types::SimError;
        let cfg = NocConfig::small_test();
        let net = Network::new(cfg.clone());
        let sites = enumerate_sites(&cfg);
        let good = sites[0];

        let mut off_mesh = good;
        off_mesh.router = cfg.mesh.len() as u16;
        assert!(matches!(
            FaultSpec::transient(off_mesh, 10).validate_in(&net),
            Err(SimError::SiteOutOfMesh { routers: 16, .. })
        ));

        let mut no_such_port = good;
        no_such_port.port = Direction::ALL.len() as u8;
        assert!(matches!(
            FaultSpec::transient(no_such_port, 10).validate_in(&net),
            Err(SimError::FaultSpecInvalid { reason, .. })
                if reason.contains("port index")
        ));

        // Router 0 is a corner: at least one cardinal port is off-mesh.
        let dead = Direction::ALL
            .iter()
            .position(|&d| !cfg.mesh.port_live(NodeId(0), d))
            .expect("corner router has a dead port") as u8;
        let mut edge = good;
        edge.router = 0;
        edge.port = dead;
        assert!(matches!(
            FaultSpec::transient(edge, 10).validate_in(&net),
            Err(SimError::FaultSpecInvalid { reason, .. })
                if reason.contains("dead edge port")
        ));

        let per_vc = *sites
            .iter()
            .find(|s| s.signal.module().per_vc())
            .expect("some per-VC site exists");
        let mut high_vc = per_vc;
        high_vc.vc = cfg.vcs_per_port;
        assert!(matches!(
            FaultSpec::transient(high_vc, 10).validate_in(&net),
            Err(SimError::FaultSpecInvalid { reason, .. })
                if reason.contains("VC index")
        ));

        let shared = *sites
            .iter()
            .find(|s| !s.signal.module().per_vc())
            .expect("some per-port site exists");
        let mut ghost_vc = shared;
        ghost_vc.vc = 1;
        assert!(matches!(
            FaultSpec::transient(ghost_vc, 10).validate_in(&net),
            Err(SimError::FaultSpecInvalid { reason, .. })
                if reason.contains("one instance per port")
        ));

        let mut wide_bit = good;
        wide_bit.bit = 200;
        assert!(matches!(
            FaultSpec::transient(wide_bit, 10).validate_in(&net),
            Err(SimError::FaultSpecInvalid { reason, .. })
                if reason.contains("live wire")
        ));
    }

    #[test]
    fn validate_in_rejects_quarantined_routers() {
        use noc_types::SimError;
        let cfg = NocConfig::small_test();
        let sites = enumerate_sites(&cfg);
        let site = sites[0];

        let mut net = Network::new(cfg);
        net.enable_recovery(noc_sim::RecoveryPolicy::default_policy());
        FaultSpec::transient(site, 10)
            .validate_in(&net)
            .expect("site is valid before quarantine");
        while !net.router_quarantined(site.router) {
            net.note_suspicion(site.router);
        }
        assert!(matches!(
            FaultSpec::transient(site, 10).validate_in(&net),
            Err(SimError::FaultSpecInvalid { reason, .. })
                if reason.contains("quarantined")
        ));
    }

    #[test]
    fn faultless_rollout_drains() {
        let mut net = Network::new(NocConfig::small_test());
        net.run(500);
        let out = rollout(&mut net, None, 200, 10_000, &mut NullObserver);
        assert!(out.drained);
        assert_eq!(out.fault_hits, 0);
    }

    #[test]
    fn armed_rollout_counts_hits_on_hot_wire() {
        let cfg = NocConfig::small_test();
        let mut net = Network::new(cfg.clone());
        net.run(500);
        // Sa1Req of a live port is evaluated every cycle: a permanent
        // fault must hit immediately.
        let site = SiteRef {
            router: 5,
            port: 4,
            vc: 0,
            signal: noc_types::site::SignalKind::Sa1Req,
            bit: 0,
        };
        let spec = FaultSpec::permanent(site, net.cycle());
        let out = rollout(&mut net, Some(&spec), 100, 20_000, &mut NullObserver);
        assert!(out.fault_hits >= 100, "hits {}", out.fault_hits);
    }

    #[test]
    fn transient_rollout_hits_at_most_per_cycle_evaluations() {
        let cfg = NocConfig::small_test();
        let mut net = Network::new(cfg.clone());
        net.run(300);
        let site = SiteRef {
            router: 0,
            port: 4,
            vc: 0,
            signal: noc_types::site::SignalKind::Sa1Req,
            bit: 0,
        };
        let spec = FaultSpec::transient(site, net.cycle());
        let out = rollout(&mut net, Some(&spec), 50, 20_000, &mut NullObserver);
        assert_eq!(out.fault_hits, 1, "Sa1Req evaluated once per cycle");
    }

    #[test]
    fn validate_rejects_zero_period_intermittent() {
        let site = SiteRef {
            router: 0,
            port: 0,
            vc: 0,
            signal: noc_types::site::SignalKind::Sa1Req,
            bit: 0,
        };
        let good = FaultSpec {
            site,
            kind: noc_types::site::FaultKind::Intermittent {
                period: 10,
                duty: 3,
            },
            start: 0,
        };
        assert!(good.validate().is_ok());
        let bad = FaultSpec {
            kind: noc_types::site::FaultKind::Intermittent { period: 0, duty: 1 },
            ..good
        };
        assert!(matches!(
            bad.validate(),
            Err(noc_types::SimError::FaultSpecInvalid { .. })
        ));
    }

    #[test]
    fn validate_rejects_degenerate_intermittent_duties() {
        let site = SiteRef {
            router: 0,
            port: 0,
            vc: 0,
            signal: noc_types::site::SignalKind::Sa1Req,
            bit: 0,
        };
        let never = FaultSpec::intermittent(site, 10, 0, 0);
        assert!(matches!(
            never.validate(),
            Err(noc_types::SimError::FaultSpecInvalid { .. })
        ));
        let over = FaultSpec::intermittent(site, 4, 5, 0);
        assert!(matches!(
            over.validate(),
            Err(noc_types::SimError::FaultSpecInvalid { .. })
        ));
        assert!(FaultSpec::intermittent(site, 4, 4, 0).validate().is_ok());
    }

    #[test]
    fn stuck_at_constructor_maps_level_to_kind() {
        let site = SiteRef {
            router: 1,
            port: 0,
            vc: 0,
            signal: noc_types::site::SignalKind::RcOutDir,
            bit: 1,
        };
        assert_eq!(
            FaultSpec::stuck_at(site, false, 7).kind,
            FaultKind::StuckAt0
        );
        assert_eq!(FaultSpec::stuck_at(site, true, 7).kind, FaultKind::StuckAt1);
        assert!(FaultSpec::stuck_at(site, true, 7).validate().is_ok());
    }

    #[test]
    fn watchdog_validate_rejects_zero_thresholds() {
        assert!(Watchdog::default_policy().validate().is_ok());
        let no_budget = Watchdog {
            cycle_budget: 0,
            stall_window: 100,
        };
        assert!(matches!(
            no_budget.validate(),
            Err(noc_types::SimError::WatchdogInvalid { .. })
        ));
        let no_window = Watchdog {
            cycle_budget: 100,
            stall_window: 0,
        };
        assert!(matches!(
            no_window.validate(),
            Err(noc_types::SimError::WatchdogInvalid { .. })
        ));
    }

    #[test]
    fn watched_healthy_run_matches_plain_rollout() {
        let cfg = NocConfig::small_test();
        let mut net = Network::new(cfg);
        net.run(500);
        let mut plain_net = net.clone();
        let plain = rollout(&mut plain_net, None, 200, 10_000, &mut NullObserver);
        let watched = rollout_watched(
            &mut net,
            None,
            200,
            10_000,
            Watchdog::default_policy(),
            &mut NullObserver,
        );
        assert!(watched.hang.is_none());
        assert_eq!(watched.outcome, plain);
        assert_eq!(net.cycle(), plain_net.cycle());
    }

    #[test]
    fn cycle_budget_trips_during_active_window() {
        let mut net = Network::new(NocConfig::small_test());
        net.run(100);
        let start = net.cycle();
        let dog = Watchdog {
            cycle_budget: 10,
            stall_window: u64::MAX,
        };
        let watched = rollout_watched(&mut net, None, 200, 10_000, dog, &mut NullObserver);
        let hang = watched.hang.expect("budget below active window must trip");
        assert_eq!(hang.kind, HangKind::CycleBudget);
        assert_eq!(hang.at_cycle, start + 10);
        assert!(!watched.outcome.drained);
    }

    #[test]
    fn zero_stall_window_trips_no_progress_at_drain_start() {
        // A zero stall window trips on the first drain-phase check while
        // flits are still in flight — deterministic coverage of the
        // NoProgress path without needing a genuinely wedged network.
        let mut cfg = NocConfig::small_test();
        cfg.injection_rate = 0.20;
        let mut net = Network::new(cfg);
        net.run(300);
        let dog = Watchdog {
            cycle_budget: u64::MAX,
            stall_window: 0,
        };
        let watched = rollout_watched(&mut net, None, 200, 10_000, dog, &mut NullObserver);
        let hang = watched
            .hang
            .expect("in-flight traffic plus zero window must trip");
        assert_eq!(hang.kind, HangKind::NoProgress);
        assert_eq!(hang.stalled_for, 0);
        assert!(!watched.outcome.drained);
    }
}
