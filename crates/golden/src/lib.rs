//! Golden-reference oracle, ground-truth classification and campaign
//! orchestration for the NoCAlert reproduction.
//!
//! The paper's methodology (Section 5.2/5.3) separates three concerns that
//! this crate keeps separate too:
//!
//! 1. **Ground truth** ([`oracle`]) — run the identical workload fault-free
//!    once, log every ejection in a Golden Reference, and diff each
//!    under-fault run against it. A fault is *malicious* iff the diff
//!    shows a network-correctness violation (flit drop, unbounded
//!    delivery, new/duplicated flits, corruption/mixing, reordering);
//!    anything else — including arbitrarily delayed delivery — is benign.
//! 2. **Detection** — NoCAlert (`nocalert` crate) and ForEVeR
//!    (`nocalert-forever` crate) observe each run independently and know
//!    nothing about the ground truth.
//! 3. **Accounting** ([`campaign`], [`stats`]) — combine 1 and 2 into
//!    true/false positives/negatives, detection-latency CDFs and
//!    per-checker statistics: Figures 6–9 of the paper.
//!
//! # Example
//!
//! ```no_run
//! use nocalert_golden::{Campaign, CampaignConfig, Detector};
//! use noc_types::NocConfig;
//!
//! let cc = CampaignConfig::paper_defaults(NocConfig::paper_baseline(), 0);
//! let campaign = Campaign::new(cc);
//! let sites = fault::sample::stride(&fault::enumerate_sites(&campaign.config().noc), 100);
//! let results = campaign.run_many(&sites, 4);
//! let fig6 = nocalert_golden::stats::breakdown(&results, Detector::NoCAlert);
//! assert_eq!(fig6.fn_, 0.0, "Observation 1: no false negatives");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod attack;
pub mod campaign;
pub mod job;
pub mod oracle;
pub mod recovery;
pub mod stats;

pub use aging::{
    verdict_of, AgingError, AgingHarness, AgingOptions, AgingOutcome, AgingReport, EpochFault,
    EpochLog, EpochReport,
};
pub use attack::{
    classify as classify_attack, covered_fault_for, effective_interference, standard_cells,
    AttackCampaign, AttackCampaignConfig, AttackCampaignOptions, AttackCampaignReport, AttackCell,
    AttackCellReport, AttackClass, AttackHarness, AttackRun,
};
pub use campaign::{
    outcome, Campaign, CampaignArena, CampaignConfig, CampaignError, CampaignReport, Checkpoint,
    Detector, DetectorOutcome, Determinism, Outcome, ResilienceOptions, RunOutcome, RunResult,
    SiteReport,
};
pub use job::{digest_rows, GoldenCache, JobDriver};
pub use oracle::{classify, GoldenReference, RunLog, Verdict, ViolationKind};
pub use recovery::{
    containment_covered, standard_recovery_specs, verify_delivery, DeliveryVerdict,
    RecoveryCampaign, RecoveryCampaignConfig, RecoveryCampaignOptions, RecoveryCampaignReport,
    RecoveryHarness, RecoveryOptions, RecoveryOutcome, RecoveryRun, RecoverySiteReport,
};
