//! Per-run outcome types: the detector views, the confusion matrix, the
//! full [`RunResult`] record, and the resilient-runtime wrapper
//! [`RunOutcome`] that classifies runs the harness had to terminate
//! (crashes, hangs) instead of silently dropping them.

use crate::oracle::Verdict;
use fault::{FaultSpec, Hang};
use noc_types::site::{FaultKind, SiteRef};
use noc_types::Cycle;
use nocalert::CheckerId;
use serde::{Deserialize, Serialize};

/// What one detector concluded about one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorOutcome {
    /// Did the detector raise anything at all?
    pub detected: bool,
    /// Cycles from the injection instant to the first alarm.
    pub latency: Option<u64>,
}

/// The three detector views compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Detector {
    /// Plain NoCAlert: every assertion triggers.
    NoCAlert,
    /// NoCAlert with low-risk invariances (1/3) deferred when alone
    /// (Observation 2, "NoCAlert Cautious").
    NoCAlertCautious,
    /// The ForEVeR baseline.
    ForEVeR,
}

/// Confusion-matrix cell for one (run, detector) pair, following the
/// paper's definitions: *positive* means the detector raised an alarm,
/// *true* means the verdict agrees with the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Alarm raised, fault was malicious.
    TruePositive,
    /// Alarm raised, fault was benign.
    FalsePositive,
    /// Silent, fault was benign.
    TrueNegative,
    /// Silent, fault was malicious — the failure mode NoCAlert claims to
    /// eliminate (Observation 1: 0% false negatives).
    FalseNegative,
}

/// Combines a detector flag with the ground truth.
pub fn outcome(detected: bool, malicious: bool) -> Outcome {
    match (detected, malicious) {
        (true, true) => Outcome::TruePositive,
        (true, false) => Outcome::FalsePositive,
        (false, false) => Outcome::TrueNegative,
        (false, true) => Outcome::FalseNegative,
    }
}

/// Everything measured for one fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Injected site.
    pub site: SiteRef,
    /// Temporal fault kind.
    pub kind: FaultKind,
    /// Injection cycle.
    pub injected_at: Cycle,
    /// Times the armed bit flipped a live wire (0 ⇒ vacuous injection).
    pub fault_hits: u64,
    /// Ground-truth verdict from the golden-reference comparison.
    pub verdict: Verdict,
    /// Plain NoCAlert.
    pub nocalert: DetectorOutcome,
    /// Cautious NoCAlert (Observation 2).
    pub cautious: DetectorOutcome,
    /// ForEVeR baseline.
    pub forever: DetectorOutcome,
    /// Distinct NoCAlert checkers that asserted at least once.
    pub checkers: Vec<CheckerId>,
    /// Distinct checkers asserted within the first detection cycle
    /// (Figure 9's "simultaneously asserted checkers").
    pub simultaneous: u8,
}

impl RunResult {
    /// Ground truth: did the fault cause a network-correctness violation?
    pub fn malicious(&self) -> bool {
        self.verdict.malicious()
    }

    /// Confusion-matrix cell for one detector view.
    pub fn outcome(&self, d: Detector) -> Outcome {
        let detected = match d {
            Detector::NoCAlert => self.nocalert.detected,
            Detector::NoCAlertCautious => self.cautious.detected,
            Detector::ForEVeR => self.forever.detected,
        };
        outcome(detected, self.malicious())
    }

    /// Detection latency for one detector view.
    pub fn latency(&self, d: Detector) -> Option<u64> {
        match d {
            Detector::NoCAlert => self.nocalert.latency,
            Detector::NoCAlertCautious => self.cautious.latency,
            Detector::ForEVeR => self.forever.latency,
        }
    }
}

/// How one run under the resilient runtime concluded.
///
/// The ordinary campaign API returns bare [`RunResult`]s and propagates
/// crashes; the resilient runtime instead quarantines every run behind a
/// panic boundary and a watchdog and records *how* it ended, so a single
/// poisoned fault site cannot take down a multi-hour sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The rollout ran to its normal conclusion.
    Completed(RunResult),
    /// The watchdog terminated the rollout (cycle budget or progress
    /// stall). The oracle comparison still ran on the truncated log, so a
    /// full [`RunResult`] is available — its verdict necessarily includes
    /// `NotDrained`.
    Deadlock {
        /// Classification of the truncated run.
        result: RunResult,
        /// What tripped and when.
        hang: Hang,
    },
    /// The rollout panicked; the panic was caught at the isolation
    /// boundary and the run quarantined.
    Crashed {
        /// Injected site.
        site: SiteRef,
        /// Temporal fault kind.
        kind: FaultKind,
        /// Injection cycle.
        injected_at: Cycle,
        /// The panic payload (stringified).
        payload: String,
    },
}

impl RunOutcome {
    /// The injected site, however the run ended.
    pub fn site(&self) -> SiteRef {
        match self {
            RunOutcome::Completed(r) | RunOutcome::Deadlock { result: r, .. } => r.site,
            RunOutcome::Crashed { site, .. } => *site,
        }
    }

    /// The classified result, when the oracle comparison completed
    /// (normal and watchdog-terminated runs; not crashes).
    pub fn run_result(&self) -> Option<&RunResult> {
        match self {
            RunOutcome::Completed(r) | RunOutcome::Deadlock { result: r, .. } => Some(r),
            RunOutcome::Crashed { .. } => None,
        }
    }

    /// Did the run crash?
    pub fn is_crashed(&self) -> bool {
        matches!(self, RunOutcome::Crashed { .. })
    }

    /// Did the watchdog terminate the run?
    pub fn is_deadlock(&self) -> bool {
        matches!(self, RunOutcome::Deadlock { .. })
    }

    /// One-line summary, used in determinism-violation reports.
    pub fn summary(&self) -> String {
        match self {
            RunOutcome::Completed(r) => {
                format!(
                    "completed (malicious={}, hits={})",
                    r.malicious(),
                    r.fault_hits
                )
            }
            RunOutcome::Deadlock { hang, .. } => {
                format!("deadlock ({:?} at cycle {})", hang.kind, hang.at_cycle)
            }
            RunOutcome::Crashed { payload, .. } => format!("crashed ({payload})"),
        }
    }
}

/// Whether the deterministic re-execution of a crashed/hung run agreed
/// with the first attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Determinism {
    /// The retry reproduced the first outcome exactly.
    Confirmed,
    /// The retry diverged — the harness (or the platform) is
    /// non-deterministic, which invalidates seed-based reproduction.
    Violated {
        /// Summary of the divergent second outcome.
        second: String,
    },
}

/// One fault site's complete record under the resilient runtime: the
/// spec, how the run ended, and (for crashed/hung runs) whether the
/// deterministic retry confirmed the outcome. This is the checkpoint
/// shard line format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteReport {
    /// The injection this record is for.
    pub spec: FaultSpec,
    /// How the (first) run concluded.
    pub outcome: RunOutcome,
    /// `Some` iff the run crashed or hung and was re-executed once.
    pub determinism: Option<Determinism>,
}

impl SiteReport {
    /// True when the retry diverged from the first attempt.
    pub fn determinism_violated(&self) -> bool {
        matches!(self.determinism, Some(Determinism::Violated { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_matrix() {
        assert_eq!(outcome(true, true), Outcome::TruePositive);
        assert_eq!(outcome(true, false), Outcome::FalsePositive);
        assert_eq!(outcome(false, false), Outcome::TrueNegative);
        assert_eq!(outcome(false, true), Outcome::FalseNegative);
    }

    #[test]
    fn crashed_outcome_roundtrips_through_json() {
        let site = SiteRef {
            router: 3,
            port: 1,
            vc: 0,
            signal: noc_types::site::SignalKind::RcOutDir,
            bit: 0,
        };
        let report = SiteReport {
            spec: FaultSpec::transient(site, 500),
            outcome: RunOutcome::Crashed {
                site,
                kind: FaultKind::Transient,
                injected_at: 500,
                payload: "attempt to divide by zero".into(),
            },
            determinism: Some(Determinism::Confirmed),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: SiteReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(back.outcome.is_crashed());
        assert_eq!(back.outcome.site(), site);
        assert!(!back.determinism_violated());
    }
}
