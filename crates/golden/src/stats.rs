//! Aggregation of campaign results into the paper's figures.
//!
//! Each function here computes exactly one published artifact:
//!
//! * [`breakdown`] → Figure 6 (TP/FP/TN/FN percentages per detector view),
//! * [`latency_cdf`] → Figure 7 (cumulative detection-delay distribution
//!   over true positives),
//! * [`checker_shares`] → Figure 8 (share of violations caught per
//!   checker),
//! * [`simultaneity_cdf`] → Figure 9 (CDF of simultaneously asserted
//!   checkers at first detection).

use crate::campaign::{Detector, Outcome, RunResult};
use nocalert::CheckerId;
use serde::{Deserialize, Serialize};

/// Figure-6 style fault-coverage breakdown, in percent of all injections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Breakdown {
    /// % true positives.
    pub tp: f64,
    /// % false positives.
    pub fp: f64,
    /// % true negatives.
    pub tn: f64,
    /// % false negatives (the paper's headline: 0 for NoCAlert).
    pub fn_: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

/// Computes the Figure-6 breakdown for one detector view.
pub fn breakdown(results: &[RunResult], d: Detector) -> Breakdown {
    let mut b = Breakdown {
        runs: results.len(),
        ..Breakdown::default()
    };
    if results.is_empty() {
        return b;
    }
    for r in results {
        match r.outcome(d) {
            Outcome::TruePositive => b.tp += 1.0,
            Outcome::FalsePositive => b.fp += 1.0,
            Outcome::TrueNegative => b.tn += 1.0,
            Outcome::FalseNegative => b.fn_ += 1.0,
        }
    }
    let n = results.len() as f64 / 100.0;
    b.tp /= n;
    b.fp /= n;
    b.tn /= n;
    b.fn_ /= n;
    b
}

/// Cumulative detection-delay distribution over **true positives**
/// (Figure 7): sorted `(latency, cumulative %)` pairs.
pub fn latency_cdf(results: &[RunResult], d: Detector) -> Vec<(u64, f64)> {
    let mut lats: Vec<u64> = results
        .iter()
        .filter(|r| r.outcome(d) == Outcome::TruePositive)
        .filter_map(|r| r.latency(d))
        .collect();
    lats.sort_unstable();
    let n = lats.len() as f64;
    let mut out = Vec::new();
    for (i, l) in lats.iter().enumerate() {
        // Collapse duplicates to the highest cumulative fraction.
        if i + 1 == lats.len() || lats[i + 1] != *l {
            out.push((*l, (i + 1) as f64 / n * 100.0));
        }
    }
    out
}

/// Fraction of the CDF at or below `latency` (e.g. `cdf_at(..,0)` = the
/// "% detected instantaneously" headline).
pub fn cdf_at(cdf: &[(u64, f64)], latency: u64) -> f64 {
    cdf.iter()
        .take_while(|(l, _)| *l <= latency)
        .last()
        .map(|(_, p)| *p)
        .unwrap_or(0.0)
}

/// Figure 8: per-checker share (%) of all (run × checker) assertion
/// incidences across the campaign. Indexed by `CheckerId::index()`.
pub fn checker_shares(results: &[RunResult]) -> [f64; CheckerId::COUNT] {
    let mut counts = [0u64; CheckerId::COUNT];
    for r in results {
        for c in &r.checkers {
            counts[c.index()] += 1;
        }
    }
    let total: u64 = counts.iter().sum();
    let mut shares = [0.0; CheckerId::COUNT];
    if total > 0 {
        for (i, &c) in counts.iter().enumerate() {
            shares[i] = c as f64 / total as f64 * 100.0;
        }
    }
    shares
}

/// Figure 9: cumulative distribution of the number of simultaneously
/// asserted checkers at the first detection cycle, over detected runs.
pub fn simultaneity_cdf(results: &[RunResult]) -> Vec<(u8, f64)> {
    let mut sims: Vec<u8> = results
        .iter()
        .filter(|r| r.nocalert.detected)
        .map(|r| r.simultaneous)
        .collect();
    sims.sort_unstable();
    let n = sims.len() as f64;
    let mut out = Vec::new();
    for (i, s) in sims.iter().enumerate() {
        if i + 1 == sims.len() || sims[i + 1] != *s {
            out.push((*s, (i + 1) as f64 / n * 100.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::DetectorOutcome;
    use crate::oracle::{Verdict, ViolationKind};
    use noc_types::site::{FaultKind, SignalKind, SiteRef};

    fn result(detected: bool, latency: Option<u64>, malicious: bool, sim: u8) -> RunResult {
        RunResult {
            site: SiteRef {
                router: 0,
                port: 0,
                vc: 0,
                signal: SignalKind::RcOutDir,
                bit: 0,
            },
            kind: FaultKind::Transient,
            injected_at: 0,
            fault_hits: 1,
            verdict: Verdict {
                violations: if malicious {
                    vec![ViolationKind::FlitDropped]
                } else {
                    vec![]
                },
            },
            nocalert: DetectorOutcome { detected, latency },
            cautious: DetectorOutcome { detected, latency },
            forever: DetectorOutcome { detected, latency },
            checkers: if detected {
                vec![CheckerId(16), CheckerId(24)]
            } else {
                vec![]
            },
            simultaneous: sim,
        }
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let rs = vec![
            result(true, Some(0), true, 2),
            result(true, Some(3), false, 1),
            result(false, None, false, 0),
            result(false, None, true, 0),
        ];
        let b = breakdown(&rs, Detector::NoCAlert);
        assert_eq!(b.tp, 25.0);
        assert_eq!(b.fp, 25.0);
        assert_eq!(b.tn, 25.0);
        assert_eq!(b.fn_, 25.0);
        assert!((b.tp + b.fp + b.tn + b.fn_ - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_cdf_over_true_positives_only() {
        let rs = vec![
            result(true, Some(0), true, 1),
            result(true, Some(0), true, 1),
            result(true, Some(5), true, 1),
            result(true, Some(9), false, 1), // FP: excluded
        ];
        let cdf = latency_cdf(&rs, Detector::NoCAlert);
        assert_eq!(cdf, vec![(0, 66.66666666666666), (5, 100.0)]);
        assert!((cdf_at(&cdf, 0) - 66.666).abs() < 0.1);
        assert_eq!(cdf_at(&cdf, 4), cdf_at(&cdf, 0));
        assert_eq!(cdf_at(&cdf, 5), 100.0);
    }

    #[test]
    fn checker_shares_normalize() {
        let rs = vec![
            result(true, Some(0), true, 2),
            result(true, Some(1), true, 1),
        ];
        let shares = checker_shares(&rs);
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(shares[CheckerId(16).index()], 50.0);
        assert_eq!(shares[CheckerId(24).index()], 50.0);
    }

    #[test]
    fn simultaneity_cdf_counts_detected_runs() {
        let rs = vec![
            result(true, Some(0), true, 1),
            result(true, Some(0), true, 2),
            result(true, Some(0), true, 2),
            result(false, None, false, 0),
        ];
        let cdf = simultaneity_cdf(&rs);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0].0, 1);
        assert!((cdf[0].1 - 33.333).abs() < 0.1);
        assert_eq!(cdf[1], (2, 100.0));
    }

    #[test]
    fn empty_inputs_do_not_divide_by_zero() {
        let b = breakdown(&[], Detector::ForEVeR);
        assert_eq!(b.runs, 0);
        assert!(latency_cdf(&[], Detector::NoCAlert).is_empty());
        assert!(simultaneity_cdf(&[]).is_empty());
        assert_eq!(checker_shares(&[]).iter().sum::<f64>(), 0.0);
    }
}
