//! Detection race: the same fault observed by NoCAlert and by ForEVeR.
//!
//! Injects a permanent stuck bit into a buffer write-enable wire of a
//! central router of the 8×8 baseline, then reports when each mechanism
//! notices. The fault drops real flits (wedging their wormholes) and
//! fabricates spurious writes: NoCAlert's port-level checkers assert in
//! the very first faulty cycle, while ForEVeR — whose Allocation
//! Comparator cannot see buffer faults — must wait for a notification
//! counter to miss zero across a whole 1,500-cycle epoch (paper: >100×
//! detection-latency gap, Figure 7).
//!
//! Run with: `cargo run --release --example detection_race`

use noc_types::site::SignalKind;
use nocalert_repro::prelude::*;

fn main() {
    let mut cfg = NocConfig::paper_baseline();
    cfg.injection_rate = 0.12;

    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    let mut fv = Forever::new(&cfg, 1_500);

    // Both detectors watch from cycle 0, like the hardware they model.
    for _ in 0..4_000 {
        net.step_observed(&mut (&mut bank, &mut fv));
    }
    assert!(!bank.any_asserted() && !fv.any_detected());

    let site = SiteRef {
        router: 27,
        port: 3,
        vc: 1,
        signal: SignalKind::BufWrite,
        bit: 0,
    };
    let t0 = net.cycle();
    println!("cycle {t0}: arming permanent fault at {site}");
    net.arm_fault(site, FaultKind::Permanent, t0);

    let mut nocalert_at = None;
    let mut forever_at = None;
    for _ in 0..40_000u64 {
        net.step_observed(&mut (&mut bank, &mut fv));
        if nocalert_at.is_none() {
            nocalert_at = bank.first_detection();
        }
        if forever_at.is_none() {
            forever_at = fv.first_detection();
        }
        if nocalert_at.is_some() && forever_at.is_some() {
            break;
        }
    }

    match nocalert_at {
        Some(c) => {
            println!(
                "NoCAlert:  cycle {c} (+{} after injection) — {}",
                c - t0,
                bank.assertions()
                    .first()
                    .map(|a| a.to_string())
                    .unwrap_or_default()
            );
        }
        None => println!("NoCAlert:  no assertion (fault never hit a live wire?)"),
    }
    match forever_at {
        Some(c) => println!(
            "ForEVeR:   cycle {c} (+{} after injection) — {:?}",
            c - t0,
            fv.detections().first().map(|d| d.mechanism)
        ),
        None => println!("ForEVeR:   never detected"),
    }
    if let (Some(a), Some(b)) = (nocalert_at, forever_at) {
        let (la, lb) = ((a - t0).max(1), (b - t0).max(1));
        println!("latency advantage: {}x", lb as f64 / la as f64);
    }
}
