//! Fault localization from the assertion stream.
//!
//! NoCAlert is "intended to be used in conjunction with fault recovery
//! techniques" (Section 1): a recovery/reconfiguration mechanism needs to
//! know *where* to act. Because every [`AssertionEvent`] carries the
//! router, port and module of the checker that fired, the earliest
//! assertions localize the fault: the first checker to see an illegal
//! wire is (almost always) soldered to the faulty module itself, and
//! cascade assertions at downstream routers arrive later.
//!
//! [`localize`] implements the natural policy — majority vote over the
//! assertions raised within a short window after first detection, earliest
//! cycle breaking ties — and reports a confidence. The `diagnose` bench
//! binary measures its accuracy over a fault campaign.

use crate::bank::AssertionEvent;
use crate::table::info;
use noc_types::site::ModuleClass;
use serde::{Deserialize, Serialize};

/// A localization verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Most likely faulty router.
    pub router: u16,
    /// Most likely module class (from the earliest same-router checker
    /// with a module association; `None` if only network-level checkers
    /// fired).
    pub module: Option<ModuleClass>,
    /// Port context reported by the earliest same-router assertion.
    pub port: u8,
    /// Fraction of windowed assertions agreeing with the chosen router.
    pub confidence: f64,
    /// Number of assertions considered.
    pub evidence: usize,
}

/// Localizes a fault from raised assertions.
///
/// Considers every assertion within `window` cycles of the first one,
/// votes on the router (earliest assertion wins ties), then picks module
/// and port from the earliest assertion at that router. Returns `None`
/// when no assertion was raised.
pub fn localize(events: &[AssertionEvent], window: u64) -> Option<Diagnosis> {
    let first = events.first()?;
    let horizon = first.cycle + window;
    let windowed: Vec<&AssertionEvent> = events.iter().take_while(|e| e.cycle <= horizon).collect();

    // Vote: count per router; ties broken by earliest occurrence.
    let mut counts: Vec<(u16, usize, usize)> = Vec::new(); // (router, count, first_idx)
    for (i, e) in windowed.iter().enumerate() {
        match counts.iter_mut().find(|(r, _, _)| *r == e.router) {
            Some((_, c, _)) => *c += 1,
            None => counts.push((e.router, 1, i)),
        }
    }
    let &(router, votes, _) = counts
        .iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))?;

    let earliest_at = windowed.iter().find(|e| e.router == router)?;
    Some(Diagnosis {
        router,
        module: info(earliest_at.checker).module,
        port: earliest_at.port,
        confidence: votes as f64 / windowed.len() as f64,
        evidence: windowed.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CheckerId;

    fn ev(checker: u8, cycle: u64, router: u16, port: u8) -> AssertionEvent {
        AssertionEvent {
            checker: CheckerId(checker),
            cycle,
            router,
            port,
            vc: 0,
        }
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert_eq!(localize(&[], 10), None);
    }

    #[test]
    fn single_assertion_localizes_exactly() {
        let d = localize(&[ev(4, 100, 7, 2)], 10).unwrap();
        assert_eq!(d.router, 7);
        assert_eq!(d.module, Some(ModuleClass::Sa1));
        assert_eq!(d.port, 2);
        assert_eq!(d.confidence, 1.0);
    }

    #[test]
    fn majority_beats_downstream_cascade() {
        // Faulty router 7 fires twice; the misrouted flit trips one checker
        // downstream at router 8.
        let events = [ev(4, 100, 7, 1), ev(16, 100, 7, 0), ev(1, 103, 8, 3)];
        let d = localize(&events, 10).unwrap();
        assert_eq!(d.router, 7);
        assert!(d.confidence > 0.6);
        assert_eq!(d.evidence, 3);
    }

    #[test]
    fn window_excludes_late_noise() {
        let events = [ev(2, 100, 7, 1), ev(1, 500, 9, 0), ev(1, 501, 9, 0)];
        let d = localize(&events, 10).unwrap();
        assert_eq!(d.router, 7, "late assertions outside the window ignored");
        assert_eq!(d.evidence, 1);
    }

    #[test]
    fn tie_breaks_toward_earliest() {
        let events = [ev(24, 100, 3, 0), ev(24, 101, 5, 0)];
        let d = localize(&events, 10).unwrap();
        assert_eq!(d.router, 3);
    }

    #[test]
    fn network_level_checker_has_no_module() {
        let d = localize(&[ev(32, 50, 12, 4)], 5).unwrap();
        assert_eq!(d.module, None);
        assert_eq!(d.router, 12);
    }
}
