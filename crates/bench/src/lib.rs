//! Shared harness utilities for the per-figure experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section (see DESIGN.md's experiment index). They share the
//! campaign setup, a tiny `--key value` argument parser, and JSON result
//! dumping so EXPERIMENTS.md can be regenerated mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fault::{FaultSpec, Watchdog};
use golden::{Campaign, CampaignConfig, ResilienceOptions, RunResult};
use noc_types::{Cycle, NocConfig};
use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Minimal `--key value` / `--flag` argument parser.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn from_env() -> Args {
        let mut map = HashMap::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap_or_default(),
                    _ => String::from("true"),
                };
                map.insert(key.to_string(), val);
            }
        }
        Args { map }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.map.get(key).map(|v| v == "true").unwrap_or(false)
    }

    /// Raw string value, if given.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(|s| s.as_str())
    }
}

/// The standard experiment setup shared by the campaign figures.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Network configuration.
    pub noc: NocConfig,
    /// Number of sampled fault sites (0 = full universe).
    pub sites: usize,
    /// Worker threads.
    pub threads: usize,
    /// Checkpoint root (`--checkpoint-dir`); campaigns shard results
    /// under per-phase subdirectories of it.
    pub checkpoint_dir: Option<PathBuf>,
    /// Skip sites already completed in the checkpoint (`--resume`).
    pub resume: bool,
    /// Hang-detection policy override (`--cycle-budget` /
    /// `--stall-window`); `None` keeps [`Watchdog::default_policy`].
    pub watchdog: Option<Watchdog>,
}

impl Experiment {
    /// Builds the experiment from CLI args: `--sites N` (default 400,
    /// `--full` for the whole universe), `--rate F`, `--mesh K`,
    /// `--threads N`, `--seed S`, `--checkpoint-dir PATH`, `--resume`,
    /// `--cycle-budget C`, `--stall-window C`.
    ///
    /// An invalid watchdog override (zero budget or stall window) is a
    /// configuration error, not a per-run failure: it exits immediately
    /// with the [`noc_types::SimError::WatchdogInvalid`] diagnostic
    /// instead of silently terminating every rollout at cycle zero.
    pub fn from_args(args: &Args) -> Experiment {
        let mut noc = NocConfig::paper_baseline();
        let k: u8 = args.get("mesh", 8);
        noc.mesh = noc_types::Mesh::new(k, k);
        noc.injection_rate = args.get("rate", 0.10);
        noc.seed = args.get("seed", noc.seed);
        let sites = if args.flag("full") {
            0
        } else {
            args.get("sites", 400)
        };
        let threads = args.get(
            "threads",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        );
        let watchdog = if args.str("cycle-budget").is_some() || args.str("stall-window").is_some() {
            let defaults = Watchdog::default_policy();
            let dog = Watchdog {
                cycle_budget: args.get("cycle-budget", defaults.cycle_budget),
                stall_window: args.get("stall-window", defaults.stall_window),
            };
            if let Err(e) = dog.validate() {
                eprintln!("[args] {e}");
                std::process::exit(2);
            }
            Some(dog)
        } else {
            None
        };
        Experiment {
            noc,
            sites,
            threads,
            checkpoint_dir: args.str("checkpoint-dir").map(PathBuf::from),
            resume: args.flag("resume"),
            watchdog,
        }
    }

    /// The site list this experiment sweeps.
    pub fn site_list(&self) -> Vec<noc_types::SiteRef> {
        let universe = fault::enumerate_sites(&self.noc);
        if self.sites == 0 || self.sites >= universe.len() {
            universe
        } else {
            fault::sample::stride(&universe, self.sites)
        }
    }

    /// Resilience options for one campaign phase: results shard under
    /// `<checkpoint-dir>/<phase>` so binaries that run several campaigns
    /// (fig6's two warm-ups, ablate's per-checker sweeps) keep them
    /// separate. Creating `<checkpoint-dir>/STOP` requests a graceful
    /// flush-and-exit (no OS signal handlers here: the workspace forbids
    /// `unsafe`, so a polled file flag is the portable cancellation
    /// channel; kill-safety for hard kills comes from the per-line shard
    /// flushes instead).
    pub fn resilience(&self, phase: &str) -> ResilienceOptions {
        ResilienceOptions {
            watchdog: self.watchdog,
            checkpoint_dir: self.checkpoint_dir.as_ref().map(|d| d.join(phase)),
            resume: self.resume,
            cancel: self.checkpoint_dir.as_ref().map(|d| {
                let flag = Arc::new(AtomicBool::new(false));
                let watcher = Arc::clone(&flag);
                let stop = d.join("STOP");
                std::thread::spawn(move || loop {
                    if stop.exists() {
                        watcher.store(true, Ordering::SeqCst);
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(200));
                });
                flag
            }),
        }
    }

    /// Runs a batch of specs through the resilient driver under this
    /// experiment's checkpoint/resume policy and summarizes the sweep's
    /// health on stderr. Crashed runs are quarantined and excluded from
    /// the returned (classified) results; a fatal harness error
    /// (checkpoint I/O, config mismatch) exits with a diagnostic.
    pub fn run_resilient(
        &self,
        campaign: &Campaign,
        specs: &[FaultSpec],
        phase: &str,
    ) -> Vec<RunResult> {
        let opts = self.resilience(phase);
        let report = match campaign.run_many_resilient(specs, self.threads, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[campaign] fatal: {e}");
                std::process::exit(2);
            }
        };
        if report.resumed > 0 {
            eprintln!("[campaign] resumed: {} sites already done", report.resumed);
        }
        if report.corrupt_lines > 0 {
            eprintln!(
                "[campaign] checkpoint: {} torn/corrupt lines skipped",
                report.corrupt_lines
            );
        }
        for r in &report.reports {
            match &r.outcome {
                golden::RunOutcome::Crashed { site, payload, .. } => {
                    eprintln!("[campaign] CRASHED  {site:?}: {payload}")
                }
                golden::RunOutcome::Deadlock { hang, result } => eprintln!(
                    "[campaign] DEADLOCK {:?}: {:?} at cycle {}",
                    result.site, hang.kind, hang.at_cycle
                ),
                golden::RunOutcome::Completed(_) => {}
            }
            if r.determinism_violated() {
                eprintln!(
                    "[campaign] DETERMINISM VIOLATION at {:?} — retry diverged",
                    r.outcome.site()
                );
            }
        }
        let (crashed, deadlocked) = (report.crashed(), report.deadlocked());
        if crashed + deadlocked > 0 {
            eprintln!(
                "[campaign] quarantined {crashed} crashed / {deadlocked} deadlocked of {} runs",
                report.reports.len()
            );
        }
        if report.interrupted {
            eprintln!("[campaign] interrupted by STOP flag — partial results checkpointed; rerun with --resume");
        }
        report.results()
    }

    /// Runs the transient-fault campaign at one injection instant through
    /// the resilient driver (checkpointing under phase `w<warmup>` when
    /// `--checkpoint-dir` is given).
    pub fn run_campaign(&self, warmup: Cycle) -> (Campaign, Vec<RunResult>) {
        let cc = CampaignConfig::paper_defaults(self.noc.clone(), warmup);
        let campaign = Campaign::new(cc);
        let sites = self.site_list();
        eprintln!(
            "[campaign] warmup={warmup} sites={} threads={}",
            sites.len(),
            self.threads
        );
        let t0 = std::time::Instant::now();
        let specs: Vec<FaultSpec> = sites
            .iter()
            .map(|&s| FaultSpec::transient(s, campaign.injection_cycle()))
            .collect();
        let results = self.run_resilient(&campaign, &specs, &format!("w{warmup}"));
        eprintln!(
            "[campaign] {} injections in {:.1}s",
            results.len(),
            t0.elapsed().as_secs_f64()
        );
        (campaign, results)
    }
}

/// Writes `value` as pretty JSON to `--json PATH` if given.
pub fn maybe_write_json<T: Serialize>(args: &Args, value: &T) {
    if let Some(path) = args.map.get("json") {
        let s = match serde_json::to_string_pretty(value) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[json] serialization failed for {path}: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = std::fs::write(path, s) {
            eprintln!("[json] could not write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("[json] wrote {path}");
    }
}

/// Renders a simple aligned two-column table row.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<46} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs_and_flags() {
        let mut a = Args::default();
        a.map.insert("sites".into(), "123".into());
        a.map.insert("full".into(), "true".into());
        assert_eq!(a.get("sites", 0usize), 123);
        assert_eq!(a.get("missing", 7u32), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("absent"));
    }

    #[test]
    fn watchdog_flags_build_a_validated_policy() {
        let mut a = Args::default();
        a.map.insert("cycle-budget".into(), "50000".into());
        let e = Experiment::from_args(&a);
        let dog = e.watchdog.unwrap_or_else(Watchdog::default_policy);
        assert_eq!(dog.cycle_budget, 50_000);
        assert_eq!(dog.stall_window, Watchdog::default_policy().stall_window);

        let mut b = Args::default();
        b.map.insert("stall-window".into(), "750".into());
        let e = Experiment::from_args(&b);
        let dog = e.watchdog.unwrap_or_else(Watchdog::default_policy);
        assert_eq!(dog.stall_window, 750);

        let none = Experiment::from_args(&Args::default());
        assert!(none.watchdog.is_none(), "no flags → library default policy");
    }

    #[test]
    fn experiment_site_sampling() {
        let e = Experiment {
            noc: NocConfig::small_test(),
            sites: 50,
            threads: 1,
            checkpoint_dir: None,
            resume: false,
            watchdog: None,
        };
        assert_eq!(e.site_list().len(), 50);
        let full = Experiment {
            sites: 0,
            ..e.clone()
        };
        assert!(full.site_list().len() > 1_000);
    }
}
