//! `nocalertd` — campaign-as-a-service for the NoCAlert reproduction
//! (DESIGN.md §15).
//!
//! The service turns the repository's fault-injection campaigns into
//! submittable jobs: a client POSTs a [`noc_types::JobSpec`] (transient
//! sweep, recovery sweep, attack matrix, or aging run), a worker
//! executes it through [`golden::JobDriver`] — the same sharded engines
//! the `bench` binaries drive — and the client follows progress and
//! clustered incidents over a streaming HTTP/SSE feed.
//!
//! Three properties define the design:
//!
//! * **Bit-identity.** A job's aggregate (pinned by an FNV-1a digest
//!   over the canonical per-site reports) is identical to a direct
//!   `bench` run of the same spec, at any worker count, including
//!   across a `kill -9` / restart / resume cycle. The engines shard
//!   work round-robin and reassemble in input order, so scheduling
//!   never leaks into results.
//! * **Durability.** Every job owns a directory under
//!   `data_dir/jobs/<id>/`: `job.json` (spec + lifecycle state),
//!   `checkpoint/` (the engines' JSONL shards, flushed per unit) and
//!   `result.json` (the aggregate). On restart the server re-enqueues
//!   every non-terminal job with resume enabled; completed units are
//!   restored from shards instead of re-run.
//! * **Shared golden references.** Transient jobs draw their warmed
//!   campaign (fault-free warm-up + golden rollout) from a process-wide
//!   [`golden::GoldenCache`] keyed by configuration, so concurrent jobs
//!   with the same configuration pay the warm-up once.
//!
//! The crate is hot-path lint clean: no panics, no `unwrap` — every
//! fallible path returns a structured error to the client or the log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod registry;
pub mod server;

pub use registry::{JobHandle, Registry};
pub use server::{Server, ServerOptions};
