//! Model ↔ simulator equivalence: the transitions `noc-lint`'s model
//! checker explores are the *same code* the simulator executes.
//!
//! Two pins:
//!
//! * Every ARQ decision the live [`Transport`] makes during an
//!   adversarial end-to-end run (recorded with the decision log, inputs
//!   included) replays exactly through the pure [`noc_sim::arq`]
//!   functions — the functions the model checker's transition relation
//!   calls. Decision-derived counters must also reconcile with
//!   [`TransportStats`], so the log is known to be complete, not a
//!   subset.
//! * Every containment action in a live network's recovery trace replays
//!   exactly through a fresh [`RecoveryController`] — the controller the
//!   model checker's ladder replay instantiates.

use noc_sim::arq::{self, ArqDecision, ReceiverAction, SenderTimeoutAction};
use noc_sim::{
    ArqConfig, ContainmentLevel, Network, RecoveryController, RecoveryPolicy, Transport,
};
use noc_types::{Direction, NocConfig, RoutingAlgorithm};

/// 4×4 fault-region mesh with manual-injection-only traffic.
fn region_cfg() -> NocConfig {
    let mut cfg = NocConfig::small_test();
    cfg.routing = RoutingAlgorithm::FaultRegion;
    cfg.vcs_per_port = 1;
    cfg.message_classes = 1;
    cfg.packet_lengths = vec![5];
    cfg.injection_rate = 0.0;
    cfg
}

/// Steps the closed net+transport loop until both are quiet or `budget`
/// cycles pass; returns true when quiescent.
fn settle(net: &mut Network, t: &mut Transport, budget: u64) -> bool {
    for _ in 0..budget {
        if t.quiescent() && net.is_drained() {
            return true;
        }
        net.step_observed(t);
        t.post_step(net);
    }
    t.quiescent() && net.is_drained()
}

#[test]
fn recorded_arq_decisions_replay_through_the_pure_functions() {
    let cfg = region_cfg();
    let arq = ArqConfig::default_policy();
    let mut net = Network::new(cfg.clone());
    let mut t = Transport::new(&cfg, arq);
    t.enable_decision_log();

    let nodes = cfg.mesh.len() as u16;
    for src in 0..nodes {
        for dest in 0..nodes {
            if src != dest {
                net.enqueue_packet(src, dest, 0, 5).expect("valid pair");
            }
        }
    }
    // Let traffic fill the mesh, then sever a central link: worms caught
    // on the dead link are lost, forcing timeouts, retransmissions and
    // (once the region map reroutes) eventual delivery.
    for _ in 0..150 {
        net.step_observed(&mut t);
        t.post_step(&mut net);
    }
    assert!(net.sever_link(5, Direction::East));
    assert!(settle(&mut net, &mut t, 200_000), "{:?}", t.stats());

    let log = t.decision_log();
    assert!(!log.is_empty());
    let mut timeouts = 0u64;
    for d in log {
        match *d {
            ArqDecision::Data {
                already_delivered,
                corrupted,
                action,
            } => assert_eq!(
                arq::receiver_data_action(already_delivered, corrupted),
                action
            ),
            ArqDecision::Control { sig, action } => {
                assert_eq!(arq::sender_control_action(sig), action);
            }
            ArqDecision::Timeout {
                attempts,
                delivered,
                action,
                ..
            } => {
                assert_eq!(
                    arq::sender_timeout_action(&arq, attempts, delivered),
                    action
                );
                timeouts += 1;
            }
        }
    }
    assert!(
        timeouts > 0,
        "the severed link must force at least one timeout"
    );

    // The log is complete: decision-derived counters reconcile with the
    // transport's own statistics.
    let stats = t.stats();
    let count = |pred: &dyn Fn(&ArqDecision) -> bool| log.iter().filter(|d| pred(d)).count() as u64;
    assert_eq!(
        count(&|d| matches!(
            d,
            ArqDecision::Data {
                action: ReceiverAction::DeliverAndAck,
                ..
            }
        )),
        stats.delivered
    );
    assert_eq!(
        count(&|d| matches!(
            d,
            ArqDecision::Data {
                action: ReceiverAction::SuppressAndReAck,
                ..
            }
        )),
        stats.duplicates_suppressed
    );
    assert_eq!(
        count(&|d| matches!(
            d,
            ArqDecision::Data {
                action: ReceiverAction::Nack,
                ..
            }
        )),
        stats.nacks_sent
    );
    assert_eq!(
        count(&|d| matches!(
            d,
            ArqDecision::Timeout {
                action: SenderTimeoutAction::Retransmit { .. },
                applied: true,
                ..
            }
        )),
        stats.retransmits
    );
    assert_eq!(
        count(&|d| matches!(
            d,
            ArqDecision::Timeout {
                action: SenderTimeoutAction::GiveUp { .. },
                ..
            }
        )),
        stats.gave_up
    );
}

#[test]
fn recovery_trace_replays_through_a_fresh_controller() {
    let cfg = region_cfg();
    let policy = RecoveryPolicy::default_policy();
    let mut net = Network::new(cfg);
    net.enable_recovery(policy);

    // Drive two suspect VCs well past quarantine, one alert-cycle at a
    // time (alerts within a cycle collapse; escalation counts cycles).
    for _ in 0..policy.disable_threshold + 3 {
        net.notify_alert(5, 1, 0, false);
        net.notify_alert(9, 2, 0, false);
        net.run(1);
    }
    net.run(1);

    let trace = net.recovery_trace();
    assert!(!trace.is_empty());

    // Replay: a fresh controller fed the same alert sequence reproduces
    // every recorded level — the exact replay the model checker performs.
    use std::collections::BTreeMap;
    let mut replays: BTreeMap<(u16, u8, u8), RecoveryController> = BTreeMap::new();
    let mut last_level: BTreeMap<(u16, u8, u8), ContainmentLevel> = BTreeMap::new();
    for ev in trace {
        let key = (ev.router, ev.port, ev.vc);
        let c = replays.entry(key).or_default();
        assert_eq!(
            c.note_alert(&policy, ev.port, ev.vc),
            Some(ev.level),
            "{ev:?}"
        );
        // Live monotonicity, the property NL501 proves statically.
        if let Some(prev) = last_level.get(&key) {
            assert!(ev.level >= *prev, "{ev:?} regressed below {prev:?}");
        }
        last_level.insert(key, ev.level);
    }

    // Both ladders climbed Squash → Reset → Disable exactly once, and
    // post-quarantine alerts were consumed without further action.
    let s = net.recovery_stats();
    assert_eq!(s.squashes, 2);
    assert_eq!(s.resets, 2);
    assert_eq!(s.disables, 2);
    assert_eq!(
        s.alerts_consumed,
        2 * u64::from(policy.disable_threshold + 3)
    );
    for c in replays.values() {
        assert!(c.is_quarantined(1, 0) || c.is_quarantined(2, 0));
    }
}
