//! The shared JSONL shard substrate behind every durable campaign
//! artifact: fault-campaign checkpoints ([`super::checkpoint`]), attack
//! journals ([`crate::attack`]), recovery journals ([`crate::recovery`]),
//! and aging epoch logs ([`crate::aging`]). One implementation, one set
//! of durability semantics:
//!
//! * **append + flush per row** — a `kill -9` loses at most the
//!   in-flight row;
//! * **torn trailing line** (no final newline) is the expected signature
//!   of a mid-write kill: skipped by the loader, counted, and truncated
//!   away when the shard is reopened for writing. Newline-terminating
//!   the fragment instead would leave a complete-but-unparseable line a
//!   later load must refuse;
//! * **mid-file corruption** — an unparseable line *inside* the
//!   complete, newline-terminated prefix — is file damage, not a kill
//!   signature, and loading refuses it as
//!   [`CampaignError::ShardCorrupt`] rather than silently dropping the
//!   row and every row after it;
//! * **`meta.json` config pinning** — a shard directory records the
//!   campaign configuration it was written under, and opening it with a
//!   different configuration is refused as
//!   [`CampaignError::CheckpointMismatch`] (mixing rows computed under
//!   different configurations would corrupt aggregates).

use super::error::CampaignError;
use serde::{Deserialize, Serialize, Value};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Name of the metadata file pinning a shard directory's configuration.
pub const META_NAME: &str = "meta.json";

fn io_err(path: &Path, detail: impl std::fmt::Display) -> CampaignError {
    CampaignError::Checkpoint {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    }
}

/// Creates `dir` if needed and pins it to `config`: a fresh directory
/// gets a `meta.json` of `{"version": version, "config": <config>}`,
/// an existing one must carry a matching config.
///
/// # Errors
///
/// [`CampaignError::Checkpoint`] on I/O or parse failures,
/// [`CampaignError::CheckpointMismatch`] when the directory belongs to a
/// different campaign configuration.
pub fn ensure_meta<C>(dir: &Path, version: u32, config: &C) -> Result<(), CampaignError>
where
    C: Serialize + Deserialize + PartialEq,
{
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let meta_path = dir.join(META_NAME);
    if meta_path.exists() {
        let text = fs::read_to_string(&meta_path).map_err(|e| io_err(&meta_path, e))?;
        let doc: Value = Value::parse_json(&text).map_err(|e| io_err(&meta_path, e))?;
        let found: C =
            serde::de_field(&doc, "config", "meta").map_err(|e| io_err(&meta_path, e))?;
        if found != *config {
            return Err(CampaignError::CheckpointMismatch {
                path: dir.to_path_buf(),
            });
        }
    } else {
        let meta = Value::Object(vec![
            ("version".to_string(), version.to_value()),
            ("config".to_string(), config.to_value()),
        ]);
        let mut text = String::new();
        meta.write_json_pretty(&mut text);
        fs::write(&meta_path, text).map_err(|e| io_err(&meta_path, e))?;
    }
    Ok(())
}

/// Parses every complete row of one JSONL file, in line order. Returns
/// the rows plus a flag for a torn trailing line (no final newline — a
/// mid-write kill), which is skipped rather than parsed. A missing file
/// reads as empty.
///
/// # Errors
///
/// [`CampaignError::ShardCorrupt`] when a line inside the complete,
/// newline-terminated prefix fails to parse, [`CampaignError::Checkpoint`]
/// on I/O failures.
pub fn load_file<T: Deserialize>(path: &Path) -> Result<(Vec<T>, bool), CampaignError> {
    if !path.exists() {
        return Ok((Vec::new(), false));
    }
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| io_err(path, e))?;
    let complete_len = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let torn = complete_len < text.len();
    let mut rows = Vec::new();
    for (idx, line) in text[..complete_len].lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<T>(line) {
            Ok(r) => rows.push(r),
            Err(e) => {
                return Err(CampaignError::ShardCorrupt {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    detail: e.to_string(),
                })
            }
        }
    }
    Ok((rows, torn))
}

/// Loads every complete row from every `shard-*.jsonl` file in `dir`, in
/// shard name + line order. The second element counts torn trailing
/// lines across shards; duplicate rows are the caller's concern (keep
/// the last).
///
/// # Errors
///
/// As [`load_file`], per shard.
pub fn load_shards<T: Deserialize>(dir: &Path) -> Result<(Vec<T>, usize), CampaignError> {
    let mut shards: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| io_err(dir, e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".jsonl"))
        })
        .collect();
    shards.sort();
    let mut rows = Vec::new();
    let mut corrupt = 0usize;
    for shard in shards {
        let (mut r, torn) = load_file(&shard)?;
        rows.append(&mut r);
        if torn {
            corrupt += 1;
        }
    }
    Ok((rows, corrupt))
}

/// Append handle for one JSONL file; rows are flushed to the OS one by
/// one — the substrate's kill-safety granularity.
#[derive(Debug)]
pub struct Appender {
    path: PathBuf,
    file: File,
}

impl Appender {
    /// Opens `path` for appending. A torn trailing line from a previous
    /// killed run is truncated away first: the in-flight row re-runs
    /// anyway, and newline-terminating the fragment instead would leave
    /// a complete-but-unparseable line that a later load rightly refuses
    /// as mid-file corruption.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on I/O failures.
    pub fn open(path: impl Into<PathBuf>) -> Result<Appender, CampaignError> {
        let path = path.into();
        if path.exists() {
            let mut text = String::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_string(&mut text))
                .map_err(|e| io_err(&path, e))?;
            let complete_len = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
            if complete_len < text.len() {
                OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(complete_len as u64))
                    .map_err(|e| io_err(&path, e))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        Ok(Appender { path, file })
    }

    /// Opens the conventional per-worker shard file `shard-w<worker>.jsonl`
    /// in `dir` (the layout [`load_shards`] reassembles).
    ///
    /// # Errors
    ///
    /// As [`Appender::open`].
    pub fn open_shard(dir: &Path, worker: usize) -> Result<Appender, CampaignError> {
        Appender::open(dir.join(format!("shard-w{worker}.jsonl")))
    }

    /// Appends one row as a single JSONL line and flushes it to the OS
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on serialization or I/O failures.
    pub fn append<T: Serialize>(&mut self, row: &T) -> Result<(), CampaignError> {
        let mut line = serde_json::to_string(row).map_err(|e| io_err(&self.path, e))?;
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|_| self.file.flush())
            .map_err(|e| io_err(&self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Row {
        id: u32,
        tag: String,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Cfg {
        knob: u32,
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nocalert-jsonl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn meta_pins_config_and_refuses_mismatch() {
        let dir = tmpdir("meta");
        ensure_meta(&dir, 1, &Cfg { knob: 7 }).unwrap();
        ensure_meta(&dir, 1, &Cfg { knob: 7 }).unwrap();
        let err = ensure_meta(&dir, 1, &Cfg { knob: 8 }).unwrap_err();
        assert!(matches!(err, CampaignError::CheckpointMismatch { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_roundtrip_torn_tail_and_corruption() {
        let dir = tmpdir("rows");
        fs::create_dir_all(&dir).unwrap();
        let mut w = Appender::open_shard(&dir, 0).unwrap();
        w.append(&Row {
            id: 1,
            tag: "a".into(),
        })
        .unwrap();
        drop(w);
        let shard = dir.join("shard-w0.jsonl");
        // A torn fragment is skipped, counted, and repaired on reopen.
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(b"{\"id\":2,\"ta").unwrap();
        drop(f);
        let (rows, corrupt) = load_shards::<Row>(&dir).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(corrupt, 1);
        let mut w = Appender::open_shard(&dir, 0).unwrap();
        w.append(&Row {
            id: 3,
            tag: "c".into(),
        })
        .unwrap();
        drop(w);
        let (rows, corrupt) = load_shards::<Row>(&dir).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(corrupt, 0, "the repaired shard is pristine");
        // Mid-file corruption is refused with the line pinpointed.
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(b"{\"id\": garbage}\n{\"id\":4,\"tag\":\"d\"}\n")
            .unwrap();
        drop(f);
        let err = load_shards::<Row>(&dir).unwrap_err();
        match err {
            CampaignError::ShardCorrupt { path, line, .. } => {
                assert_eq!(path, shard);
                assert_eq!(line, 3);
            }
            other => panic!("expected ShardCorrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reads_empty() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        let (rows, torn) = load_file::<Row>(&dir.join("nope.jsonl")).unwrap();
        assert!(rows.is_empty());
        assert!(!torn);
        fs::remove_dir_all(&dir).unwrap();
    }
}
