//! Pass 3 — source-level repo lints.
//!
//! Two families of checks, both token-level (comments, strings and
//! `#[cfg(test)]` items are blanked out first, so documentation and test
//! code never trip them):
//!
//! * **Hot-path abort lint** (`NL301`/`NL302`/`NL303`) — the simulator,
//!   checker bank and campaign crates must not contain `unwrap`/`expect`/
//!   `panic!`-style abort points outside test code. The paper's mechanism
//!   is *observational* (checkers never perturb the network); a stray
//!   panic in the hot path would make a fault-injection run die instead of
//!   recording an escape. A committed allowlist (`noc-lint.allow`) grants
//!   named per-file budgets for the few justified aborts (e.g.
//!   constructor-contract panics); anything beyond the budget is an error,
//!   and stale allowlist entries are warnings so the budget only shrinks.
//! * **Catalogue consistency** (`NL311`/`NL312`) — the `SignalKind` enum
//!   in `noc-types` is mirrored by two hand-maintained tables: its own
//!   `ALL` array and the width table in `noc-sim::signals`. The lint
//!   cross-checks the *source text* of both against the compiled enum, so
//!   a variant added to one but not the other is caught even where the
//!   compiler cannot help (const arrays don't enforce completeness).

use crate::diag::{Diagnostic, Pass, Severity};
use noc_types::site::SignalKind;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The crates whose `src/` trees form the runtime hot path. The `compat/`
/// shims are deliberately excluded: they mirror external crates whose real
/// APIs panic by contract.
pub const HOT_PATH_ROOTS: [&str; 11] = [
    "crates/analysis/src",
    "crates/bench/src",
    "crates/core/src",
    "crates/fault/src",
    "crates/forever/src",
    "crates/golden/src",
    "crates/hw-model/src",
    "crates/noc-sim/src",
    "crates/noc-types/src",
    "crates/service/src",
    "src",
];

/// Call tokens that abort the process.
const FORBIDDEN: [&str; 7] = [
    ".unwrap(",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "dbg!",
];

/// Summary statistics of one lint run (part of the JSON report).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LintStats {
    /// `.rs` files scanned under the hot-path roots.
    pub files_scanned: usize,
    /// Forbidden-token hits absorbed by the allowlist.
    pub allowlisted_hits: usize,
    /// Forbidden-token hits exceeding (or missing from) the allowlist.
    pub forbidden_hits: usize,
}

/// One allowlist entry: `path token budget`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Allow {
    file: String,
    token: String,
    budget: usize,
}

fn parse_allowlist(text: &str, path: &Path, diags: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(file), Some(token), Some(budget), None) => match budget.parse::<usize>() {
                Ok(budget) if budget > 0 => entries.push(Allow {
                    file: file.to_string(),
                    token: token.to_string(),
                    budget,
                }),
                _ => diags.push(
                    Diagnostic::new(
                        Pass::Lint,
                        "NL304",
                        Severity::Error,
                        format!("allowlist budget must be a positive integer, got `{budget}`"),
                    )
                    .with_source(path.display().to_string(), idx as u32 + 1),
                ),
            },
            _ => diags.push(
                Diagnostic::new(
                    Pass::Lint,
                    "NL304",
                    Severity::Error,
                    format!("malformed allowlist line `{line}` (want `path token budget`)"),
                )
                .with_source(path.display().to_string(), idx as u32 + 1),
            ),
        }
    }
    entries
}

/// Replaces every comment, string/char literal and `#[cfg(test)]`-gated
/// item with spaces, preserving byte offsets and line structure.
pub fn blank_noncode(src: &str) -> String {
    let mut out: Vec<u8> = src.bytes().collect();
    let b = src.as_bytes();
    let n = b.len();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for c in out.iter_mut().take(to).skip(from) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                // Ordinary string: blank the contents, keep the quotes.
                let start = i + 1;
                i += 1;
                while i < n && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                blank(&mut out, start, i.min(n));
                i = (i + 1).min(n);
            }
            b'r' | b'b'
                if {
                    // Raw (byte) string heads: r", r#", br", b" ...
                    let mut j = i + 1;
                    if b[i] == b'b' && j < n && b[j] == b'r' {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while j < n && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    j < n && b[j] == b'"' && (hashes > 0 || b[i] != b'b' || b[i + 1] == b'"')
                } =>
            {
                let mut j = i + 1;
                let raw = b[i] == b'r' || (j < n && b[j] == b'r');
                if b[i] == b'b' && j < n && b[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                // j is at the opening quote.
                let start = j + 1;
                i = j + 1;
                'scan: while i < n {
                    if b[i] == b'\\' && !raw {
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while seen < hashes && k < n && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            blank(&mut out, start, i);
                            i = k;
                            break 'scan;
                        }
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal is 'x' or '\x...'.
                if i + 1 < n && b[i + 1] == b'\\' {
                    let start = i + 1;
                    i += 2;
                    while i < n && b[i] != b'\'' {
                        i += 1;
                    }
                    blank(&mut out, start, i.min(n));
                    i = (i + 1).min(n);
                } else if i + 2 < n && b[i + 2] == b'\'' {
                    blank(&mut out, i + 1, i + 2);
                    i += 3;
                } else {
                    i += 1; // lifetime
                }
            }
            _ => i += 1,
        }
    }
    // Safety of from_utf8: we only overwrote bytes with ASCII spaces, and
    // only whole multi-byte sequences land inside blanked regions.
    String::from_utf8_lossy(&out).into_owned()
}

/// Blanks every item gated behind a `#[cfg(...)]` attribute whose
/// condition mentions `test`. Expects comment/string-blanked input.
pub fn blank_test_items(blanked: &str) -> String {
    let mut out: Vec<u8> = blanked.bytes().collect();
    let b = blanked.as_bytes();
    let n = b.len();
    let mut i = 0;
    while let Some(pos) = blanked[i..].find("#[cfg") {
        let attr_start = i + pos;
        // Find the closing bracket of the attribute.
        let mut j = attr_start + 1;
        let mut depth = 0;
        while j < n {
            match b[j] {
                b'[' | b'(' => depth += 1,
                b']' | b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr_end = (j + 1).min(n);
        let cond = &blanked[attr_start..attr_end];
        let is_test = cond
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w == "test");
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes, then the item itself: up to the
        // first top-level `;` or through the matching `}` of the first
        // top-level `{`.
        let mut k = attr_end;
        loop {
            while k < n && (b[k] as char).is_whitespace() {
                k += 1;
            }
            if k < n && b[k] == b'#' {
                let mut depth = 0;
                while k < n {
                    match b[k] {
                        b'[' | b'(' => depth += 1,
                        b']' | b')' => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        let mut depth = 0i32;
        while k < n {
            match b[k] {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' | b')' | b']' => {
                    depth -= 1;
                    if depth == 0 && b[k] == b'}' {
                        k += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for c in out.iter_mut().take(k).skip(attr_start) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
        i = k.max(attr_end);
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn rs_files(dir: &Path, acc: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rs_files(&p, acc);
        } else if p.extension().is_some_and(|e| e == "rs") {
            acc.push(p);
        }
    }
}

fn line_of(text: &str, offset: usize) -> u32 {
    text[..offset].bytes().filter(|&c| c == b'\n').count() as u32 + 1
}

/// Runs the full lint pass over `root` with the allowlist at
/// `allowlist_path` (a missing allowlist means an empty one).
pub fn run_lint(root: &Path, allowlist_path: &Path) -> (Vec<Diagnostic>, LintStats) {
    let mut diags = Vec::new();
    let allow_text = fs::read_to_string(allowlist_path).unwrap_or_default();
    let allows = parse_allowlist(&allow_text, allowlist_path, &mut diags);

    // (file, token) -> hit lines, in deterministic path order.
    let mut hits: BTreeMap<(String, String), Vec<u32>> = BTreeMap::new();
    let mut files_scanned = 0;
    for sub in HOT_PATH_ROOTS {
        let mut files = Vec::new();
        rs_files(&root.join(sub), &mut files);
        for path in files {
            let Ok(src) = fs::read_to_string(&path) else {
                diags.push(Diagnostic::new(
                    Pass::Lint,
                    "NL390",
                    Severity::Warning,
                    format!("could not read {}", path.display()),
                ));
                continue;
            };
            files_scanned += 1;
            let code = blank_test_items(&blank_noncode(&src));
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string()
                .replace('\\', "/");
            for tok in FORBIDDEN {
                let mut at = 0;
                while let Some(p) = code[at..].find(tok) {
                    let off = at + p;
                    hits.entry((
                        rel.clone(),
                        tok.trim_matches('.').trim_end_matches('(').into(),
                    ))
                    .or_default()
                    .push(line_of(&code, off));
                    at = off + tok.len();
                }
            }
        }
    }

    let mut allowlisted_hits = 0;
    let mut forbidden_hits = 0;
    for ((file, token), lines) in &hits {
        let budget = allows
            .iter()
            .find(|a| a.file == *file && a.token == *token)
            .map_or(0, |a| a.budget);
        for (idx, &line) in lines.iter().enumerate() {
            if idx < budget {
                allowlisted_hits += 1;
                diags.push(
                    Diagnostic::new(
                        Pass::Lint,
                        "NL302",
                        Severity::Info,
                        format!("allowlisted `{token}` in hot path"),
                    )
                    .with_source(file.clone(), line),
                );
            } else {
                forbidden_hits += 1;
                diags.push(
                    Diagnostic::new(
                        Pass::Lint,
                        "NL301",
                        Severity::Error,
                        format!(
                            "forbidden `{token}` in hot-path code (budget {budget}, hit {}) — \
                             return an error or add a justified noc-lint.allow entry",
                            idx + 1
                        ),
                    )
                    .with_source(file.clone(), line),
                );
            }
        }
    }
    for a in &allows {
        // A vanished file is its own staleness class: the generic
        // budget-shrink advice of NL303 would be misleading when the
        // right fix is deleting the whole line.
        if !root.join(&a.file).is_file() {
            diags.push(Diagnostic::new(
                Pass::Lint,
                "NL305",
                Severity::Warning,
                format!(
                    "allowlist entry for a file that no longer exists: {} {} budget {} — \
                     delete the entry",
                    a.file, a.token, a.budget
                ),
            ));
            continue;
        }
        let used = hits
            .get(&(a.file.clone(), a.token.clone()))
            .map_or(0, Vec::len);
        if used < a.budget {
            diags.push(Diagnostic::new(
                Pass::Lint,
                "NL303",
                Severity::Warning,
                format!(
                    "stale allowlist entry: {} {} budget {} but only {used} hit(s) — \
                     shrink the budget",
                    a.file, a.token, a.budget
                ),
            ));
        }
    }

    catalogue_consistency(root, &mut diags);

    let stats = LintStats {
        files_scanned,
        allowlisted_hits,
        forbidden_hits,
    };
    (diags, stats)
}

/// Cross-checks the `SignalKind` source tables against the compiled enum.
fn catalogue_consistency(root: &Path, diags: &mut Vec<Diagnostic>) {
    let site_rs = root.join("crates/noc-types/src/site.rs");
    let signals_rs = root.join("crates/noc-sim/src/signals.rs");
    for (path, what) in [(&site_rs, "SignalKind enum"), (&signals_rs, "width table")] {
        let Ok(src) = fs::read_to_string(path) else {
            diags.push(Diagnostic::new(
                Pass::Lint,
                "NL390",
                Severity::Warning,
                format!("could not read {} for the {what} check", path.display()),
            ));
            return;
        };
        let code = blank_noncode(&src);
        for kind in SignalKind::ALL {
            let name = format!("{kind:?}");
            let present = code
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|w| w == name);
            if !present {
                diags.push(
                    Diagnostic::new(
                        Pass::Lint,
                        "NL312",
                        Severity::Error,
                        format!("signal kind {name} is missing from the {what}"),
                    )
                    .with_source(
                        path.strip_prefix(root)
                            .unwrap_or(path)
                            .display()
                            .to_string(),
                        1,
                    ),
                );
            }
        }
    }
    // The hand-maintained `ALL` array must list every variant exactly once:
    // its declared length is part of the type, so compare the source count
    // of `SignalKind::` references inside the array with the compiled
    // truth.
    if let Ok(src) = fs::read_to_string(&site_rs) {
        let code = blank_noncode(&src);
        if let Some(start) = code.find("const ALL: [SignalKind;") {
            let body_start = match code[start..].find('[') {
                Some(rel) => match code[start + rel + 1..].find('[') {
                    Some(rel2) => start + rel + 1 + rel2,
                    None => start,
                },
                None => start,
            };
            let body_end = code[body_start..]
                .find(']')
                .map_or(code.len(), |rel| body_start + rel);
            let count = code[body_start..body_end].matches("SignalKind::").count();
            if count != SignalKind::ALL.len() {
                diags.push(
                    Diagnostic::new(
                        Pass::Lint,
                        "NL311",
                        Severity::Error,
                        format!(
                            "SignalKind::ALL lists {count} variants but the enum has {}",
                            SignalKind::ALL.len()
                        ),
                    )
                    .with_source("crates/noc-types/src/site.rs", line_of(&code, body_start)),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_strips_comments_strings_and_chars() {
        let src = r##"
let a = "panic!(inside string)"; // panic! in comment
/* panic! in block */
let c = '\n';
let r = r#"panic! raw"#;
let real = 1;
"##;
        let out = blank_noncode(src);
        assert!(!out.contains("panic!"), "{out}");
        assert!(out.contains("let real = 1;"));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn test_items_are_blanked() {
        let src = "
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
#[cfg(test)]
#[derive(Debug)]
struct Probe;
fn live2() {}
";
        let out = blank_test_items(&blank_noncode(src));
        assert_eq!(out.matches(".unwrap(").count(), 1, "{out}");
        assert!(out.contains("fn live2"));
        assert!(!out.contains("struct Probe"));
    }

    #[test]
    fn lifetimes_survive_blanking() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert_eq!(blank_noncode(src), src);
    }

    #[test]
    fn allowlist_parsing_and_budget() {
        let mut diags = Vec::new();
        let entries = parse_allowlist(
            "# comment\ncrates/x/src/a.rs expect 2\n\nbad line\n",
            Path::new("noc-lint.allow"),
            &mut diags,
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].budget, 2);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "NL304");
    }

    #[test]
    fn line_numbers_are_one_based() {
        assert_eq!(line_of("a\nb\nc", 0), 1);
        assert_eq!(line_of("a\nb\nc", 2), 2);
        assert_eq!(line_of("a\nb\nc", 4), 3);
    }

    #[test]
    fn vanished_allowlist_file_is_flagged_nl305_not_nl303() {
        let root = std::env::temp_dir().join(format!("noc-lint-nl305-{}", std::process::id()));
        let src_dir = root.join("crates/core/src");
        std::fs::create_dir_all(&src_dir).expect("temp tree");
        std::fs::write(
            src_dir.join("present.rs"),
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .expect("source file");
        let allow = root.join("noc-lint.allow");
        std::fs::write(
            &allow,
            "crates/core/src/present.rs unwrap 1\ncrates/core/src/ghost.rs unwrap 1\n",
        )
        .expect("allowlist");

        let (diags, stats) = run_lint(&root, &allow);
        let _ = std::fs::remove_dir_all(&root);

        let nl305: Vec<_> = diags.iter().filter(|d| d.code == "NL305").collect();
        assert_eq!(nl305.len(), 1, "{diags:#?}");
        assert_eq!(nl305[0].severity, Severity::Warning);
        assert!(
            nl305[0].message.contains("ghost.rs"),
            "{}",
            nl305[0].message
        );
        // The vanished entry must not double-report as a generic stale
        // budget, and the live entry must not be flagged at all.
        assert!(
            diags
                .iter()
                .filter(|d| d.code == "NL303")
                .all(|d| !d.message.contains("ghost.rs")),
            "{diags:#?}"
        );
        assert!(diags
            .iter()
            .all(|d| !(d.code == "NL305" && d.message.contains("present.rs"))));
        assert_eq!(stats.allowlisted_hits, 1);
        assert_eq!(stats.forbidden_hits, 0);
    }
}
