//! **Perf baseline harness** — the repo's first performance trajectory
//! (`BENCH_nocsim.json`).
//!
//! Measures two throughput figures on the canonical configurations:
//!
//! * **cycles/sec** — raw simulation stepping under the full NoCAlert
//!   checker bank, on the 4×4 (`small_test`) and 8×8 (`paper_baseline`)
//!   meshes. This is the per-cycle hot path the allocation-free refactor
//!   targets.
//! * **campaign runs/sec** — complete detection-campaign rollouts
//!   (clone/reset from the warm snapshot, watched rollout, ForEVeR coda,
//!   oracle classification) through [`golden::Campaign::run_many`] on the
//!   canonical 8×8 / 2-VC sweep configuration, single-threaded (per-core
//!   throughput, so the number is comparable across hosts with different
//!   core counts).
//!
//! ```text
//! cargo run --release -p nocalert-bench --bin perf -- \
//!     [--smoke] [--json PATH] [--ref PATH] [--baseline PATH] \
//!     [--cycles N] [--runs N] [--tolerance PCT]
//! ```
//!
//! Modes:
//!
//! * default — full measurement; with `--baseline PATH` (a flat metrics
//!   JSON from a previous `--measure-only` run) the output file carries
//!   both the recorded baseline and the current numbers plus their ratio.
//! * `--measure-only` — write just the flat metrics (used to record the
//!   pre-refactor baseline).
//! * `--smoke` — the CI regression gate: a shortened measurement compared
//!   against the committed reference (`--ref`, default
//!   `BENCH_nocsim.json`); exits 1 when current 8×8 cycles/sec fall more
//!   than `--tolerance` (default 15) percent below the reference's
//!   `current` section. Emits the measured smoke numbers to `--json`
//!   (default `BENCH_nocsim.smoke.json`) for inspection.

use golden::{Campaign, CampaignConfig};
use noc_sim::Network;
use noc_types::NocConfig;
use nocalert::AlertBank;
use nocalert_bench::Args;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One set of measured throughput figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Metrics {
    /// Simulation cycles per wall-clock second, 4×4 mesh, checker bank
    /// attached.
    cycles_per_sec_4x4: f64,
    /// Simulation cycles per wall-clock second, 8×8 paper baseline,
    /// checker bank attached.
    cycles_per_sec_8x8: f64,
    /// Complete campaign rollouts per wall-clock second on the canonical
    /// 8×8 / 2-VC sweep, single worker thread.
    campaign_runs_per_sec_8x8_2vc: f64,
    /// Cycles stepped per mesh for the cycles/sec figures.
    measured_cycles: u64,
    /// Campaign rollouts timed for the runs/sec figure.
    measured_runs: usize,
}

/// The committed `BENCH_nocsim.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Reference {
    /// Format tag.
    schema: String,
    /// Pre-refactor numbers, measured with this same harness before the
    /// allocation-free/arena overhaul landed.
    baseline: Metrics,
    /// Post-refactor numbers.
    current: Metrics,
    /// `current.campaign_runs_per_sec_8x8_2vc / baseline.…` — the
    /// acceptance figure.
    campaign_speedup: f64,
    /// `current.cycles_per_sec_8x8 / baseline.cycles_per_sec_8x8`.
    cycle_speedup_8x8: f64,
}

/// The canonical 8×8 / 2-VC campaign sweep configuration (the recovery
/// campaign's mesh shape driven through the detection campaign driver).
fn sweep_noc() -> NocConfig {
    let mut noc = NocConfig::paper_baseline();
    noc.vcs_per_port = 2;
    noc.message_classes = 1;
    noc.packet_lengths = vec![5];
    noc.injection_rate = 0.05;
    noc
}

/// Steps `cycles` simulated cycles under the full checker bank and
/// returns cycles/sec.
fn measure_cycles(cfg: NocConfig, cycles: u64) -> f64 {
    let mut net = Network::new(cfg.clone());
    let mut bank = AlertBank::new(&cfg);
    // Warm the allocator pools and branch predictors out of the
    // measurement window.
    for _ in 0..500 {
        net.step_observed(&mut bank);
    }
    let t0 = Instant::now();
    for _ in 0..cycles {
        net.step_observed(&mut bank);
    }
    cycles as f64 / t0.elapsed().as_secs_f64()
}

/// Times `runs` complete campaign rollouts (single worker) and returns
/// runs/sec.
fn measure_campaign(runs: usize) -> f64 {
    let cc = CampaignConfig::paper_defaults(sweep_noc(), 500);
    let campaign = Campaign::new(cc);
    let universe = fault::enumerate_sites(&campaign.config().noc);
    let sites = fault::sample::stride(&universe, runs);
    // One untimed rollout warms per-thread state.
    let _ = campaign.run_many(&sites[..1], 1);
    let t0 = Instant::now();
    let results = campaign.run_many(&sites, 1);
    assert_eq!(results.len(), sites.len());
    sites.len() as f64 / t0.elapsed().as_secs_f64()
}

fn measure(cycles: u64, runs: usize) -> Metrics {
    eprintln!("[perf] stepping 4x4 for {cycles} cycles…");
    let c4 = measure_cycles(NocConfig::small_test(), cycles);
    eprintln!("[perf] stepping 8x8 for {cycles} cycles…");
    let c8 = measure_cycles(NocConfig::paper_baseline(), cycles);
    eprintln!("[perf] timing {runs} campaign rollouts (8x8/2-VC)…");
    let rps = measure_campaign(runs);
    Metrics {
        cycles_per_sec_4x4: c4,
        cycles_per_sec_8x8: c8,
        campaign_runs_per_sec_8x8_2vc: rps,
        measured_cycles: cycles,
        measured_runs: runs,
    }
}

fn print_metrics(label: &str, m: &Metrics) {
    println!("-- {label} --");
    nocalert_bench::row("cycles/sec 4x4", format!("{:.0}", m.cycles_per_sec_4x4));
    nocalert_bench::row("cycles/sec 8x8", format!("{:.0}", m.cycles_per_sec_8x8));
    nocalert_bench::row(
        "campaign runs/sec 8x8/2-VC (1 thread)",
        format!("{:.3}", m.campaign_runs_per_sec_8x8_2vc),
    );
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    let s = serde_json::to_string_pretty(value).unwrap_or_else(|e| {
        eprintln!("[perf] cannot serialize metrics: {e}");
        std::process::exit(2);
    });
    std::fs::write(path, s + "\n").unwrap_or_else(|e| {
        eprintln!("[perf] cannot write {path}: {e}");
        std::process::exit(2);
    });
    eprintln!("[perf] wrote {path}");
}

fn load_metrics(path: &str) -> Metrics {
    let s = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("[perf] cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&s).unwrap_or_else(|e| {
        eprintln!("[perf] cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn smoke(args: &Args) -> i32 {
    let tolerance: f64 = args.get("tolerance", 15.0);
    let cycles: u64 = args.get("cycles", 6_000);
    let runs: usize = args.get("runs", 4);
    let m = measure(cycles, runs);
    print_metrics("smoke", &m);
    write_json(args.str("json").unwrap_or("BENCH_nocsim.smoke.json"), &m);
    let ref_path = args.str("ref").unwrap_or("BENCH_nocsim.json");
    let s = match std::fs::read_to_string(ref_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[perf] no committed reference at {ref_path} ({e}); gate skipped");
            return 0;
        }
    };
    let reference: Reference = serde_json::from_str(&s).unwrap_or_else(|e| {
        eprintln!("[perf] cannot parse {ref_path}: {e}");
        std::process::exit(2);
    });
    let floor = reference.current.cycles_per_sec_8x8 * (1.0 - tolerance / 100.0);
    nocalert_bench::row(
        "reference cycles/sec 8x8 (floor)",
        format!("{:.0} ({:.0})", reference.current.cycles_per_sec_8x8, floor),
    );
    if m.cycles_per_sec_8x8 < floor {
        println!(
            "\nPERF GATE FAILED: 8x8 cycles/sec {:.0} is more than {tolerance}% below the committed reference {:.0}.",
            m.cycles_per_sec_8x8, reference.current.cycles_per_sec_8x8
        );
        1
    } else {
        println!("\nPERF GATE PASSED: within {tolerance}% of the committed reference.");
        0
    }
}

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        std::process::exit(smoke(&args));
    }
    let cycles: u64 = args.get("cycles", 30_000);
    let runs: usize = args.get("runs", 24);
    let m = measure(cycles, runs);
    print_metrics("current", &m);
    if args.flag("measure-only") {
        write_json(args.str("json").unwrap_or("BENCH_nocsim.metrics.json"), &m);
        return;
    }
    let Some(baseline_path) = args.str("baseline") else {
        eprintln!("[perf] no --baseline given; writing flat metrics only");
        write_json(args.str("json").unwrap_or("BENCH_nocsim.metrics.json"), &m);
        return;
    };
    let baseline = load_metrics(baseline_path);
    print_metrics("baseline (pre-refactor)", &baseline);
    let reference = Reference {
        schema: "nocsim-perf-v1".to_string(),
        campaign_speedup: m.campaign_runs_per_sec_8x8_2vc / baseline.campaign_runs_per_sec_8x8_2vc,
        cycle_speedup_8x8: m.cycles_per_sec_8x8 / baseline.cycles_per_sec_8x8,
        baseline,
        current: m,
    };
    nocalert_bench::row(
        "campaign speedup",
        format!("{:.2}x", reference.campaign_speedup),
    );
    nocalert_bench::row(
        "8x8 cycle speedup",
        format!("{:.2}x", reference.cycle_speedup_8x8),
    );
    write_json(args.str("json").unwrap_or("BENCH_nocsim.json"), &reference);
}
