//! Campaign checkpointing: incremental JSONL shards + resume.
//!
//! Layout of a checkpoint directory:
//!
//! * `meta.json` — `{ "version": 1, "config": <CampaignConfig> }`,
//!   written once at creation. Resume refuses a directory whose config
//!   differs from the running campaign's (mixing would corrupt
//!   aggregates).
//! * `shard-w<worker>.jsonl` — one line per completed fault site, each a
//!   serialized [`SiteReport`], appended and flushed as soon as the site
//!   finishes. Workers write disjoint files, so no locking is needed.
//!
//! Kill-safety: because every line is appended and flushed individually,
//! a `kill -9` loses at most the in-flight site. A torn final line is
//! detected on resume (no trailing newline), terminated so subsequent
//! appends start clean, and skipped by the parser; the site simply
//! re-runs. Which shard a report lands in depends on worker count, but
//! aggregation reassembles reports in input-site order, so shard layout
//! never affects results.

use super::error::CampaignError;
use super::outcome::SiteReport;
use super::CampaignConfig;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const META_NAME: &str = "meta.json";

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Meta {
    version: u32,
    config: CampaignConfig,
}

/// An open checkpoint directory.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    dir: PathBuf,
}

fn ck_err(path: &Path, detail: impl std::fmt::Display) -> CampaignError {
    CampaignError::Checkpoint {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    }
}

impl Checkpoint {
    /// Opens (creating if needed) a checkpoint directory for a campaign.
    ///
    /// A fresh directory gets a `meta.json` recording `cc`. An existing
    /// one must carry a matching config.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on I/O or parse failures,
    /// [`CampaignError::CheckpointMismatch`] when the directory belongs
    /// to a different campaign configuration.
    pub fn open(dir: impl Into<PathBuf>, cc: &CampaignConfig) -> Result<Checkpoint, CampaignError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| ck_err(&dir, e))?;
        let meta_path = dir.join(META_NAME);
        if meta_path.exists() {
            let text = fs::read_to_string(&meta_path).map_err(|e| ck_err(&meta_path, e))?;
            let meta: Meta = serde_json::from_str(&text).map_err(|e| ck_err(&meta_path, e))?;
            if meta.config != *cc {
                return Err(CampaignError::CheckpointMismatch { path: dir });
            }
        } else {
            let meta = Meta {
                version: 1,
                config: cc.clone(),
            };
            let text = serde_json::to_string_pretty(&meta).map_err(|e| ck_err(&meta_path, e))?;
            fs::write(&meta_path, text).map_err(|e| ck_err(&meta_path, e))?;
        }
        Ok(Checkpoint { dir })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads every complete, parseable report from every shard, in shard
    /// name + line order. Torn or corrupt lines are skipped (the second
    /// element counts them); duplicate specs are the caller's concern
    /// (keep the last).
    pub fn load_reports(&self) -> Result<(Vec<SiteReport>, usize), CampaignError> {
        let mut shards: Vec<PathBuf> = fs::read_dir(&self.dir)
            .map_err(|e| ck_err(&self.dir, e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".jsonl"))
            })
            .collect();
        shards.sort();
        let mut reports = Vec::new();
        let mut corrupt = 0usize;
        for shard in shards {
            let mut text = String::new();
            File::open(&shard)
                .and_then(|mut f| f.read_to_string(&mut text))
                .map_err(|e| ck_err(&shard, e))?;
            let complete_len = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
            if complete_len < text.len() {
                corrupt += 1; // torn trailing line (killed mid-write)
            }
            for line in text[..complete_len].lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<SiteReport>(line) {
                    Ok(r) => reports.push(r),
                    Err(_) => corrupt += 1,
                }
            }
        }
        Ok((reports, corrupt))
    }

    /// Opens this worker's shard for appending. A torn trailing line
    /// from a previous killed run is newline-terminated first so the
    /// next append starts on a clean line.
    pub fn shard_writer(&self, worker: usize) -> Result<ShardWriter, CampaignError> {
        let path = self.dir.join(format!("shard-w{worker}.jsonl"));
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| ck_err(&path, e))?;
        let len = file.seek(SeekFrom::End(0)).map_err(|e| ck_err(&path, e))?;
        if len > 0 {
            let mut tail = [0u8; 1];
            let mut check = File::open(&path).map_err(|e| ck_err(&path, e))?;
            check
                .seek(SeekFrom::End(-1))
                .and_then(|_| check.read_exact(&mut tail))
                .map_err(|e| ck_err(&path, e))?;
            if tail[0] != b'\n' {
                file.write_all(b"\n").map_err(|e| ck_err(&path, e))?;
            }
        }
        Ok(ShardWriter { path, file })
    }
}

/// Append handle for one worker's shard.
#[derive(Debug)]
pub struct ShardWriter {
    path: PathBuf,
    file: File,
}

impl ShardWriter {
    /// Appends one report as a single JSONL line and flushes it to the OS
    /// immediately — the checkpoint's kill-safety granularity.
    pub fn append(&mut self, report: &SiteReport) -> Result<(), CampaignError> {
        let mut line = serde_json::to_string(report).map_err(|e| ck_err(&self.path, e))?;
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|_| self.file.flush())
            .map_err(|e| ck_err(&self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::super::outcome::{Determinism, RunOutcome};
    use super::*;
    use fault::FaultSpec;
    use noc_types::site::{SignalKind, SiteRef};
    use noc_types::NocConfig;

    fn cc() -> CampaignConfig {
        CampaignConfig {
            noc: NocConfig::small_test(),
            warmup: 10,
            active_window: 20,
            drain_deadline: 100,
            forever_epoch: 50,
        }
    }

    fn report(router: u16) -> SiteReport {
        let site = SiteRef {
            router,
            port: 0,
            vc: 0,
            signal: SignalKind::Sa1Req,
            bit: 0,
        };
        SiteReport {
            spec: FaultSpec::transient(site, 10),
            outcome: RunOutcome::Crashed {
                site,
                kind: noc_types::FaultKind::Transient,
                injected_at: 10,
                payload: "x".into(),
            },
            determinism: Some(Determinism::Confirmed),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nocalert-ck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_shard_ordering_independence() {
        let dir = tmpdir("rt");
        let ck = Checkpoint::open(&dir, &cc()).unwrap();
        let mut w0 = ck.shard_writer(0).unwrap();
        let mut w1 = ck.shard_writer(1).unwrap();
        w1.append(&report(3)).unwrap();
        w0.append(&report(1)).unwrap();
        w0.append(&report(2)).unwrap();
        let (reports, corrupt) = ck.load_reports().unwrap();
        assert_eq!(corrupt, 0);
        let mut routers: Vec<u16> = reports.iter().map(|r| r.spec.site.router).collect();
        routers.sort_unstable();
        assert_eq!(routers, vec![1, 2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let dir = tmpdir("mismatch");
        Checkpoint::open(&dir, &cc()).unwrap();
        let mut other = cc();
        other.warmup = 999;
        let err = Checkpoint::open(&dir, &other).unwrap_err();
        assert!(matches!(err, CampaignError::CheckpointMismatch { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_skipped_and_repaired() {
        let dir = tmpdir("torn");
        let ck = Checkpoint::open(&dir, &cc()).unwrap();
        let mut w = ck.shard_writer(0).unwrap();
        w.append(&report(1)).unwrap();
        drop(w);
        // Simulate a kill mid-write: a truncated JSON fragment, no newline.
        let shard = dir.join("shard-w0.jsonl");
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(b"{\"spec\":{\"si").unwrap();
        drop(f);
        let (reports, corrupt) = ck.load_reports().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(corrupt, 1);
        // Re-opening the shard writer repairs the torn tail; the next
        // append must parse cleanly.
        let mut w = ck.shard_writer(0).unwrap();
        w.append(&report(2)).unwrap();
        let (reports, corrupt) = ck.load_reports().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(corrupt, 1, "the torn fragment is still counted");
        fs::remove_dir_all(&dir).unwrap();
    }
}
