//! Pass 5 — explicit-state model checking of the recovery plane.
//!
//! The survival story of DESIGN.md §11 rests on two small state machines:
//! the per-VC **escalation ladder** (squash → reset → quarantine,
//! [`RecoveryController`]) and the NIC-level **ARQ** (timeout, exponential
//! backoff, dedup/re-ACK, give-up, [`noc_sim::arq`]). This pass explores
//! their product space exhaustively under an adversarial environment and
//! proves:
//!
//! * **Escalation monotonicity** (`NL501`) — the containment level never
//!   regresses as alerts accumulate, every pre-quarantine alert produces
//!   an action, and a quarantined VC stays permanently quiet.
//! * **Quiescence** (`NL502`) — from *every* reachable product state, the
//!   benign schedule (copies arrive clean, no further alerts) drives the
//!   system to a terminal state (message done or given up, nothing in
//!   flight) within a bounded number of ticks.
//! * **Exactly-once delivery** (`NL503`) — the application never sees a
//!   message twice, under any interleaving of losses, corruptions,
//!   duplicate races, timeouts, forged control flits and replayed
//!   authentic controls.
//! * **Failure honesty** (`NL504`) — a completed message was really
//!   delivered, and a recorded failure is never raised for a message the
//!   receiver delivered.
//! * **Model soundness guards** (`NL505`) — the arithmetic that the above
//!   depends on: the receiver's retire horizon must outlast the
//!   worst-case backed-off retry schedule (otherwise the dedup mark can
//!   expire *while copies are still in flight* — the model then switches
//!   to a finite mark lifetime and produces the concrete duplicate-
//!   delivery or false-failure trace), and the bounded search must not
//!   exhaust its state budget.
//!
//! # The model executes the simulator's code
//!
//! Every sender/receiver decision in the transition function is a call
//! into [`noc_sim::arq`] — the *same* pure functions
//! [`noc_sim::Transport`] executes (pinned by the `arq_equivalence`
//! integration test against recorded decision logs) — and every ladder
//! transition replays a real [`RecoveryController`]. There is no parallel
//! reimplementation of the protocol to drift.
//!
//! # Abstraction (documented in DESIGN.md §10)
//!
//! Time is abstracted to **ticks of one `ack_timeout`**: backoff timers
//! are exact multiples of the tick by construction, and every in-flight
//! copy resolves (arrives or is lost, adversary's choice) within one
//! tick. Corruption is decided at arrival. Containment's deliberate flit
//! destruction is subsumed by the adversary's loss fates, which is why
//! the ladder needs no data coupling into the ARQ beyond the product
//! itself. One message and one suspect VC suffice: messages are
//! independent under the transport's per-message state, and ladders are
//! per-VC.
//!
//! # The control-plane adversary (DESIGN.md §14)
//!
//! A compromised router can do more than drop and corrupt: it can
//! *manufacture* control flits. The model grants the adversary two extra
//! moves, each with a small budget (budgets only bound the search — the
//! moves are idempotent against a hardened sender, so a larger budget
//! reaches no new protocol states):
//!
//! * **Forge** — deliver an ACK or NACK the receiver never sent. The
//!   attacker does not hold the NIC's tag secret, so the forged copy
//!   carries `tag_valid = false` (the model conservatively grants it a
//!   *valid-looking wire source*); the hardened
//!   [`sender_control_action`] must ignore it. The soundness caveat: this
//!   encodes the assumption that a 64-bit keyed tag is unguessable —
//!   `NL504` under forging is a proof *relative to* that assumption.
//! * **Replay** — capture any genuine control copy off the wire and
//!   re-deliver it later, tag and source intact. Authentication cannot
//!   reject it; safety instead rests on the sender's pending-window
//!   staleness (a replay after completion finds no pending entry) and on
//!   the fact that a genuine ACK implies a real delivery (so a replayed
//!   ACK can never complete an undelivered message).
//!
//! The pre-hardening *trusting* rule (any well-formed ACK completes) is
//! kept behind the `mutation` feature: running the same adversary against
//! it extracts the concrete spoofed-ACK → false-completion `NL504` trace
//! that motivated the hardening, pinned as a negative test.

use crate::diag::{Diagnostic, Pass, Severity};
use noc_sim::arq::{
    receiver_data_action, sender_control_action, sender_timeout_action, ControlSignature,
    ReceiverAction, SenderControlAction, SenderTimeoutAction,
};
use noc_sim::{ArqConfig, ContainmentLevel, RecoveryController, RecoveryPolicy};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;

/// Ceiling on explored states — far above any healthy configuration
/// (which needs a few tens of thousands); hitting it is an `NL505` guard
/// failure, not a silent truncation.
const STATE_BUDGET: usize = 500_000;

/// Marker value: the dedup mark never expires (retire horizon proven to
/// outlast every copy).
const MARK_PERMANENT: u16 = u16::MAX;

/// When the `NL505` horizon guard has already condemned a configuration,
/// the exploration that extracts the concrete duplicate-delivery /
/// false-failure witness models the mark with a lifetime truncated to
/// this many ticks. The truncation only *hastens* an expiry the guard
/// proved possible — the witness shape (mark expires while copies are
/// still scheduled) is identical at the true horizon, just deeper — and
/// it keeps the witness search small.
const WITNESS_MARK_CAP: u64 = 12;

/// Sender phase of the modeled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Pending entry live, timer running.
    Waiting,
    /// Completed by an ACK.
    Done,
    /// Retry budget exhausted.
    GaveUp,
}

/// An in-flight control copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ctl {
    Ack,
    Nack,
}

/// One state of the ladder × ARQ product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct McState {
    /// Wire attempts beyond the first transmission (sender counter).
    attempts: u8,
    /// Ticks until the retransmission timer fires (0 = due this tick).
    timer: u16,
    phase: Phase,
    /// Times the application received the message (saturates at 2 — the
    /// exactly-once violation is the 1 → 2 crossing).
    delivered: u8,
    /// A `FailureRecord` was emitted.
    failure: bool,
    /// A data copy is on the wire.
    data_in_flight: bool,
    /// A control copy is on the wire.
    ctl_in_flight: Option<Ctl>,
    /// Ticks of dedup-mark lifetime left (0 = no mark,
    /// [`MARK_PERMANENT`] = proven permanent).
    mark_ttl: u16,
    /// Ladder alert count (saturating; mirrors the real controller).
    ladder_count: u8,
    /// The suspect VC is quarantined.
    quarantined: bool,
    /// Adversary's remaining alert budget.
    alerts_left: u8,
    /// Adversary's remaining forged-control budget.
    forges_left: u8,
    /// Adversary's remaining replay budget.
    replays_left: u8,
    /// Genuine control copy the adversary has captured off the wire
    /// (sticky: once snooped, replayable until the budget runs out).
    captured: Option<Ctl>,
}

impl McState {
    fn arq_terminal(self) -> bool {
        self.phase != Phase::Waiting && !self.data_in_flight && self.ctl_in_flight.is_none()
    }
}

impl fmt::Display for McState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase={:?} attempts={} timer={}t delivered={} failure={} wire=[{}{}] mark={} \
             ladder={}{} alerts_left={} forges_left={} replays_left={} captured={}",
            self.phase,
            self.attempts,
            self.timer,
            self.delivered,
            self.failure,
            if self.data_in_flight { "data " } else { "" },
            match self.ctl_in_flight {
                Some(Ctl::Ack) => "ack",
                Some(Ctl::Nack) => "nack",
                None => "-",
            },
            if self.mark_ttl == MARK_PERMANENT {
                "permanent".to_string()
            } else {
                format!("{}t", self.mark_ttl)
            },
            self.ladder_count,
            if self.quarantined {
                "(quarantined)"
            } else {
                ""
            },
            self.alerts_left,
            self.forges_left,
            self.replays_left,
            match self.captured {
                Some(Ctl::Ack) => "ack",
                Some(Ctl::Nack) => "nack",
                None => "-",
            },
        )
    }
}

/// Adversary choice for the in-flight data copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DataFate {
    ArriveClean,
    ArriveCorrupted,
    Lost,
}

/// Adversary choice for the in-flight control copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtlFate {
    Arrive,
    Lost,
}

/// An adversarial control-plane move (DESIGN.md §14): manufacture a
/// control flit and deliver it to the sender this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdvCtl {
    /// Deliver a forged control. The tag is a guess (`tag_valid = false`);
    /// the claimed wire source is granted as valid — the worst case the
    /// hardened rule must still reject.
    Forge(Ctl),
    /// Re-deliver the captured genuine control, tag and source intact.
    Replay,
}

/// One tick's worth of environment + adversary choices: the fates of the
/// in-flight copies plus the adversary's optional control-plane and
/// alert moves. The search enumerates every combination per state.
#[derive(Debug, Clone, Copy)]
struct McMove {
    data: Option<DataFate>,
    ctl: Option<CtlFate>,
    adv: Option<AdvCtl>,
    alert: bool,
}

/// How the modeled sender judges an arriving control flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ControlRule {
    /// The shipped hardened rule: authenticate tag and wire source.
    Hardened,
    /// The pre-hardening trusting rule — believes any well-formed
    /// control. Mutation builds only; exists to pin the failure the
    /// hardening removed.
    #[cfg(any(test, feature = "mutation"))]
    Trusting,
}

impl ControlRule {
    fn judge(self, sig: ControlSignature) -> SenderControlAction {
        match self {
            ControlRule::Hardened => sender_control_action(sig),
            #[cfg(any(test, feature = "mutation"))]
            ControlRule::Trusting => noc_sim::arq::sender_control_action_trusting(sig.nack),
        }
    }
}

/// Aggregate statistics of the model-checking pass.
#[derive(Debug, Clone, Serialize)]
pub struct McStats {
    /// Distinct product states reached.
    pub states_explored: u64,
    /// Transitions evaluated.
    pub transitions: u64,
    /// Transitions that exercised the escalation ladder.
    pub ladder_transitions: u64,
    /// Transitions on which the adversary delivered a forged control.
    pub forge_transitions: u64,
    /// Transitions on which the adversary replayed a captured control.
    pub replay_transitions: u64,
    /// Reachable states that are ARQ-terminal.
    pub terminal_states: u64,
    /// Longest shortest-path depth, in ticks.
    pub max_depth_ticks: u64,
    /// Receiver retention horizon, in ticks.
    pub horizon_ticks: u64,
    /// Worst-case copy lifetime (full backed-off retry schedule), ticks.
    pub worst_schedule_ticks: u64,
    /// The dedup mark is proven to outlast every copy (`NL505` guard).
    pub mark_permanent: bool,
    /// Property violations found (0 on a passing run).
    pub violations: u64,
    /// Pretty-printed counterexample traces, one per violated property
    /// code, in discovery order. Empty on a passing run.
    pub counterexamples: Vec<String>,
}

/// Result of [`model_check`].
pub struct McResult {
    /// Aggregate statistics (serialized into the report).
    pub stats: McStats,
    /// Diagnostics (`NL501`–`NL505`).
    pub diagnostics: Vec<Diagnostic>,
}

fn level_rank(level: ContainmentLevel) -> u8 {
    match level {
        ContainmentLevel::Squash => 1,
        ContainmentLevel::Reset => 2,
        ContainmentLevel::Disable => 3,
    }
}

/// Executes one real-controller ladder step from an abstract
/// `(count, quarantined)` ladder state by replaying the alert history —
/// the model checker runs the controller the simulator runs.
fn ladder_step(
    policy: &RecoveryPolicy,
    count: u8,
    quarantined: bool,
) -> (u8, bool, Option<ContainmentLevel>) {
    let mut c = RecoveryController::new();
    for _ in 0..count {
        let _ = c.note_alert(policy, 0, 0);
    }
    debug_assert_eq!(c.is_quarantined(0, 0), quarantined);
    let level = c.note_alert(policy, 0, 0);
    let next = u8::try_from(c.count(0, 0)).unwrap_or(u8::MAX);
    (next, c.is_quarantined(0, 0), level)
}

/// The deterministic tick function: resolves the adversary's fates, then
/// runs the sender timer, then the optional alert — every decision through
/// the real `arq` functions / `RecoveryController`.
struct Model<'a> {
    arq: &'a ArqConfig,
    policy: &'a RecoveryPolicy,
    mark_on_delivery: u16,
    ticks_of: fn(&ArqConfig, u32) -> u16,
    rule: ControlRule,
}

/// Backoff distance for `attempts`, in ticks (exact multiples of the
/// tick by construction: `timeout_after` is `ack_timeout` scaled by the
/// capped exponential).
fn backoff_ticks(arq: &ArqConfig, attempts: u32) -> u16 {
    if arq.ack_timeout == 0 {
        return 1;
    }
    u16::try_from(arq.timeout_after(attempts) / arq.ack_timeout).unwrap_or(u16::MAX)
}

/// A property violation observed on a transition.
struct Violation {
    code: &'static str,
    message: String,
}

impl Model<'_> {
    /// Applies an arriving control to the sender through the configured
    /// rule, recording the violations the properties watch for.
    fn sender_control(
        &self,
        n: &mut McState,
        sig: ControlSignature,
        what: &str,
        notes: &mut Vec<String>,
        violations: &mut Vec<Violation>,
    ) {
        if n.phase != Phase::Waiting {
            notes.push(format!("late {what} ignored (no pending entry)"));
            return;
        }
        match self.rule.judge(sig) {
            SenderControlAction::Complete => {
                n.phase = Phase::Done;
                notes.push(format!("{what} accepted → message complete"));
                if n.delivered == 0 {
                    violations.push(Violation {
                        code: "NL504",
                        message: format!(
                            "completion without delivery: a {what} closed a message the \
                             application never received"
                        ),
                    });
                }
            }
            SenderControlAction::RetransmitNow => {
                n.timer = 0;
                notes.push(format!("{what} accepted → timer expired now"));
            }
            SenderControlAction::Ignore => {
                notes.push(format!("{what} failed authentication → ignored"));
                if sig.tag_valid && sig.src_valid {
                    violations.push(Violation {
                        code: "NL505",
                        message: "the hardened rule rejected an authentic control copy — the \
                                  model and the protocol disagree"
                            .into(),
                    });
                }
            }
        }
    }

    fn tick(
        &self,
        s: McState,
        mv: McMove,
        violations: &mut Vec<Violation>,
        ladder_transitions: &mut u64,
    ) -> (McState, String) {
        let McMove {
            data: data_fate,
            ctl: ctl_fate,
            adv: adv_ctl,
            alert: raise_alert,
        } = mv;
        let mut n = s;
        let mut notes: Vec<String> = Vec::new();

        // Dedup-mark aging (receiver-side retire sweep).
        if n.mark_ttl != 0 && n.mark_ttl != MARK_PERMANENT {
            n.mark_ttl -= 1;
            if n.mark_ttl == 0 {
                notes.push("dedup mark retired".into());
            }
        }

        // Resolve the data copy.
        n.data_in_flight = false;
        let mut new_ctl: Option<Ctl> = None;
        match data_fate {
            None => debug_assert!(!s.data_in_flight),
            Some(DataFate::Lost) => notes.push("data copy lost".into()),
            Some(fate) => {
                let corrupted = fate == DataFate::ArriveCorrupted;
                let already = n.mark_ttl > 0;
                match receiver_data_action(already, corrupted) {
                    ReceiverAction::DeliverAndAck => {
                        n.delivered = n.delivered.saturating_add(1).min(2);
                        n.mark_ttl = self.mark_on_delivery;
                        new_ctl = Some(Ctl::Ack);
                        notes.push(format!("data delivered (#{}) → ACK", n.delivered));
                        if n.delivered >= 2 && s.delivered < 2 {
                            violations.push(Violation {
                                code: "NL503",
                                message: "duplicate delivery: the application received the \
                                          message twice"
                                    .into(),
                            });
                        }
                    }
                    ReceiverAction::SuppressAndReAck => {
                        new_ctl = Some(Ctl::Ack);
                        notes.push("duplicate suppressed → re-ACK".into());
                    }
                    ReceiverAction::Nack => {
                        new_ctl = Some(Ctl::Nack);
                        notes.push("corrupted arrival → NACK".into());
                    }
                }
            }
        }

        // Resolve the control copy. Whatever its fate, the wire was
        // visible to the compromised router: the copy is captured for
        // potential replay.
        n.ctl_in_flight = None;
        if let Some(k) = s.ctl_in_flight {
            n.captured = Some(k);
        }
        match ctl_fate {
            None => debug_assert!(s.ctl_in_flight.is_none()),
            Some(CtlFate::Lost) => notes.push("control copy lost".into()),
            Some(CtlFate::Arrive) if s.ctl_in_flight.is_none() => {}
            Some(CtlFate::Arrive) => {
                let kind = s.ctl_in_flight.unwrap_or(Ctl::Ack);
                let what = match kind {
                    Ctl::Ack => "genuine ACK",
                    Ctl::Nack => "genuine NACK",
                };
                let sig = ControlSignature::authentic(kind == Ctl::Nack);
                self.sender_control(&mut n, sig, what, &mut notes, violations);
            }
        }

        // Adversarial control delivery: a forged copy (guessed tag) or a
        // replay of the captured genuine copy (tag and source intact).
        match adv_ctl {
            None => {}
            Some(AdvCtl::Forge(kind)) => {
                debug_assert!(s.forges_left > 0);
                n.forges_left = n.forges_left.saturating_sub(1);
                let what = match kind {
                    Ctl::Ack => "forged ACK",
                    Ctl::Nack => "forged NACK",
                };
                let sig = ControlSignature {
                    nack: kind == Ctl::Nack,
                    tag_valid: false,
                    src_valid: true,
                };
                self.sender_control(&mut n, sig, what, &mut notes, violations);
            }
            Some(AdvCtl::Replay) => {
                debug_assert!(s.replays_left > 0);
                n.replays_left = n.replays_left.saturating_sub(1);
                let kind = s.captured.unwrap_or(Ctl::Ack);
                debug_assert!(s.captured.is_some());
                let what = match kind {
                    Ctl::Ack => "replayed ACK",
                    Ctl::Nack => "replayed NACK",
                };
                let sig = ControlSignature::authentic(kind == Ctl::Nack);
                self.sender_control(&mut n, sig, what, &mut notes, violations);
            }
        }
        n.ctl_in_flight = new_ctl;

        // Sender timer.
        if n.phase == Phase::Waiting {
            if n.timer > 0 {
                n.timer -= 1;
            }
            if n.timer == 0 {
                let delivered_mark = n.mark_ttl > 0;
                match sender_timeout_action(self.arq, n.attempts as u32, delivered_mark) {
                    SenderTimeoutAction::Retransmit { next_attempts, .. } => {
                        n.attempts = u8::try_from(next_attempts).unwrap_or(u8::MAX);
                        n.timer = (self.ticks_of)(self.arq, next_attempts);
                        n.data_in_flight = true;
                        notes.push(format!(
                            "timeout → retransmit #{next_attempts} (next timer {}t)",
                            n.timer
                        ));
                    }
                    SenderTimeoutAction::GiveUp { record_failure } => {
                        n.phase = Phase::GaveUp;
                        n.timer = 0;
                        if record_failure {
                            n.failure = true;
                            notes.push("retry budget exhausted → failure recorded".into());
                        } else {
                            notes.push("retry budget exhausted (delivered) → closed".into());
                        }
                        if n.failure && n.delivered > 0 {
                            violations.push(Violation {
                                code: "NL504",
                                message: "false failure: a FailureRecord was emitted for a \
                                          message the application received (the dedup mark \
                                          expired before the sender gave up)"
                                    .into(),
                            });
                        }
                    }
                }
            }
        }

        // Adversary alert against the suspect VC — the real controller.
        if raise_alert && n.alerts_left > 0 {
            n.alerts_left -= 1;
            *ladder_transitions += 1;
            let (count, quarantined, level) =
                ladder_step(self.policy, n.ladder_count, n.quarantined);
            match level {
                Some(l) => {
                    if s.quarantined {
                        violations.push(Violation {
                            code: "NL501",
                            message: format!(
                                "containment action ({l:?}) applied to an already-quarantined VC"
                            ),
                        });
                    }
                    let prev = ladder_level_of(self.policy, n.ladder_count);
                    if level_rank(l) < prev {
                        violations.push(Violation {
                            code: "NL501",
                            message: format!("escalation regressed: level {l:?} after rank {prev}"),
                        });
                    }
                    notes.push(format!("alert → {l:?}"));
                }
                None => {
                    if !s.quarantined {
                        violations.push(Violation {
                            code: "NL501",
                            message: "alert on an unquarantined VC produced no containment \
                                      action"
                                .into(),
                        });
                    }
                    notes.push("alert → ignored (quarantined)".into());
                }
            }
            n.ladder_count = count;
            n.quarantined = quarantined;
        }

        if notes.is_empty() {
            notes.push("idle tick".into());
        }
        (n, notes.join("; "))
    }
}

/// The containment level the *next* alert after `count` prior alerts
/// would select (0 before any action) — a pure function of the real
/// controller, used for the monotonicity reference point.
fn ladder_level_of(policy: &RecoveryPolicy, count: u8) -> u8 {
    if count == 0 {
        return 0;
    }
    let (_, _, level) = ladder_step(policy, count - 1, false);
    level.map_or(0, level_rank)
}

/// Exhaustive sweep of the escalation ladder alone (`NL501`): every alert
/// count from cold to past quarantine, through the real controller.
fn sweep_ladder(policy: &RecoveryPolicy, diags: &mut Vec<Diagnostic>) {
    let mut c = RecoveryController::new();
    let mut prev_rank = 0u8;
    for step in 0..policy.disable_threshold.saturating_add(3) {
        let was_quarantined = c.is_quarantined(0, 0);
        let level = c.note_alert(policy, 0, 0);
        match level {
            Some(l) => {
                if was_quarantined {
                    diags.push(Diagnostic::new(
                        Pass::Model,
                        "NL501",
                        Severity::Error,
                        format!("ladder sweep: action {l:?} after quarantine (alert #{step})"),
                    ));
                }
                if level_rank(l) < prev_rank {
                    diags.push(Diagnostic::new(
                        Pass::Model,
                        "NL501",
                        Severity::Error,
                        format!(
                            "ladder sweep: escalation regressed to {l:?} at alert #{step} \
                             (previous rank {prev_rank})"
                        ),
                    ));
                }
                prev_rank = level_rank(l);
            }
            None => {
                if !was_quarantined {
                    diags.push(Diagnostic::new(
                        Pass::Model,
                        "NL501",
                        Severity::Error,
                        format!("ladder sweep: alert #{step} swallowed before quarantine"),
                    ));
                }
            }
        }
    }
}

/// Model-checks the recovery plane under `arq` and `policy`, with the
/// shipped (hardened) control-authentication rule.
pub fn model_check(arq: &ArqConfig, policy: &RecoveryPolicy) -> McResult {
    model_check_with(arq, policy, ControlRule::Hardened)
}

/// Model-checks the recovery plane with the *pre-hardening* trusting
/// control rule — the negative control: the same spoof/replay adversary
/// must extract the spoofed-ACK false-completion counterexample the
/// hardening removed. Mutation builds only.
#[cfg(any(test, feature = "mutation"))]
pub fn model_check_trusting(arq: &ArqConfig, policy: &RecoveryPolicy) -> McResult {
    model_check_with(arq, policy, ControlRule::Trusting)
}

fn model_check_with(arq: &ArqConfig, policy: &RecoveryPolicy, rule: ControlRule) -> McResult {
    let mut diags = Vec::new();

    sweep_ladder(policy, &mut diags);

    // ---- NL505: arithmetic guards ------------------------------------
    if arq.ack_timeout == 0 || arq.backoff_factor == 0 || arq.max_retries == 0 {
        diags.push(Diagnostic::new(
            Pass::Model,
            "NL505",
            Severity::Error,
            "degenerate ArqConfig (zero ack_timeout, backoff_factor or max_retries) — the \
             recovery plane cannot be modeled"
                .into(),
        ));
        return McResult {
            stats: empty_stats(),
            diagnostics: diags,
        };
    }
    // Worst-case copy lifetime: the full backed-off retry schedule plus
    // one tick of wire flight for the final data copy and its control
    // return.
    let mut worst_schedule: u64 = 0;
    for a in 0..=arq.max_retries {
        worst_schedule = worst_schedule.saturating_add(backoff_ticks(arq, a) as u64);
    }
    worst_schedule = worst_schedule.saturating_add(2);
    let horizon_ticks = arq.retire_horizon / arq.ack_timeout;
    let mark_permanent = horizon_ticks >= worst_schedule;
    if !mark_permanent {
        let truncated = horizon_ticks > WITNESS_MARK_CAP;
        diags.push(Diagnostic::new(
            Pass::Model,
            "NL505",
            Severity::Error,
            format!(
                "retire_horizon ({horizon_ticks} ticks) can be outrun by the worst-case retry \
                 schedule ({worst_schedule} ticks): the dedup mark may expire while copies are \
                 in flight — exploring with a finite mark to extract the concrete trace{}",
                if truncated {
                    format!(" (witness search truncates the mark to {WITNESS_MARK_CAP} ticks)")
                } else {
                    String::new()
                }
            ),
        ));
    }

    // ---- Product-space BFS -------------------------------------------
    let alert_budget = u8::try_from(policy.disable_threshold.saturating_add(2)).unwrap_or(u8::MAX);
    let model = Model {
        arq,
        policy,
        mark_on_delivery: if mark_permanent {
            MARK_PERMANENT
        } else {
            u16::try_from(horizon_ticks.min(WITNESS_MARK_CAP)).unwrap_or(MARK_PERMANENT - 1)
        },
        ticks_of: backoff_ticks,
        rule,
    };
    let initial = McState {
        attempts: 0,
        timer: backoff_ticks(arq, 0),
        phase: Phase::Waiting,
        delivered: 0,
        failure: false,
        data_in_flight: true,
        ctl_in_flight: None,
        mark_ttl: 0,
        ladder_count: 0,
        quarantined: false,
        alerts_left: alert_budget,
        forges_left: 2,
        replays_left: 2,
        captured: None,
    };

    let mut arena: Vec<McState> = vec![initial];
    let mut parent: Vec<Option<(usize, String)>> = vec![None];
    let mut depth: Vec<u32> = vec![0];
    let mut index: HashMap<McState, usize> = HashMap::new();
    index.insert(initial, 0);

    let mut transitions = 0u64;
    let mut ladder_transitions = 0u64;
    let mut forge_transitions = 0u64;
    let mut replay_transitions = 0u64;
    let mut max_depth = 0u32;
    let mut budget_exhausted = false;
    let mut seen_codes: Vec<&'static str> = Vec::new();
    let mut counterexamples: Vec<String> = Vec::new();
    let mut violation_count = 0u64;

    let mut head = 0usize;
    while head < arena.len() {
        let s = arena[head];
        let d = depth[head];
        max_depth = max_depth.max(d);

        let data_fates: &[Option<DataFate>] = if s.data_in_flight {
            &[
                Some(DataFate::ArriveClean),
                Some(DataFate::ArriveCorrupted),
                Some(DataFate::Lost),
            ]
        } else {
            &[None]
        };
        let ctl_fates: &[Option<CtlFate>] = if s.ctl_in_flight.is_some() {
            &[Some(CtlFate::Arrive), Some(CtlFate::Lost)]
        } else {
            &[None]
        };
        let alert_choices: &[bool] = if s.alerts_left > 0 {
            &[false, true]
        } else {
            &[false]
        };
        let mut adv_choices: Vec<Option<AdvCtl>> = vec![None];
        if s.forges_left > 0 {
            adv_choices.push(Some(AdvCtl::Forge(Ctl::Ack)));
            adv_choices.push(Some(AdvCtl::Forge(Ctl::Nack)));
        }
        if s.replays_left > 0 && s.captured.is_some() {
            adv_choices.push(Some(AdvCtl::Replay));
        }

        for &df in data_fates {
            for &cf in ctl_fates {
                for &alert in alert_choices {
                    for &adv in &adv_choices {
                        // A fully idle tick changes nothing and cannot fire a
                        // timer that is not running — skip the no-op self-loop
                        // on terminal states.
                        if s.arq_terminal() && !alert && adv.is_none() {
                            continue;
                        }
                        transitions += 1;
                        match adv {
                            Some(AdvCtl::Forge(_)) => forge_transitions += 1,
                            Some(AdvCtl::Replay) => replay_transitions += 1,
                            None => {}
                        }
                        let mut violations = Vec::new();
                        let (n, label) = model.tick(
                            s,
                            McMove {
                                data: df,
                                ctl: cf,
                                adv,
                                alert,
                            },
                            &mut violations,
                            &mut ladder_transitions,
                        );
                        for v in violations {
                            violation_count += 1;
                            if !seen_codes.contains(&v.code) {
                                seen_codes.push(v.code);
                                let trace = render_trace(
                                    &arena, &parent, head, &label, n, v.code, &v.message,
                                );
                                diags.push(Diagnostic::new(
                                    Pass::Model,
                                    v.code,
                                    Severity::Error,
                                    format!(
                                        "{} (counterexample #{})",
                                        v.message,
                                        counterexamples.len() + 1
                                    ),
                                ));
                                counterexamples.push(trace);
                            }
                        }
                        if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(n) {
                            if arena.len() >= STATE_BUDGET {
                                budget_exhausted = true;
                                continue;
                            }
                            slot.insert(arena.len());
                            arena.push(n);
                            parent.push(Some((head, label.clone())));
                            depth.push(d + 1);
                        }
                    }
                }
            }
        }
        head += 1;
    }

    if budget_exhausted {
        diags.push(Diagnostic::new(
            Pass::Model,
            "NL505",
            Severity::Error,
            format!(
                "state budget ({STATE_BUDGET}) exhausted — the product space is unbounded \
                     under this configuration and the proof is incomplete"
            ),
        ));
    }

    // ---- NL502: quiescence from every reachable state ----------------
    // The benign schedule (arrive clean, no alerts) is deterministic and
    // its successor is itself a reachable state, so memoize over the
    // arena.
    let mut quiescent: Vec<Option<bool>> = vec![None; arena.len()];
    let benign_bound = worst_schedule
        .saturating_add(horizon_ticks.min(worst_schedule))
        .saturating_add(8);
    for start in 0..arena.len() {
        if quiescent[start].is_some() {
            continue;
        }
        let mut path: Vec<usize> = Vec::new();
        let mut cur = start;
        let verdict = loop {
            if let Some(v) = quiescent[cur] {
                break v;
            }
            if arena[cur].arq_terminal() {
                break true;
            }
            if path.len() as u64 > benign_bound || path.contains(&cur) {
                break false;
            }
            path.push(cur);
            let s = arena[cur];
            let df = if s.data_in_flight {
                Some(DataFate::ArriveClean)
            } else {
                None
            };
            let cf = if s.ctl_in_flight.is_some() {
                Some(CtlFate::Arrive)
            } else {
                None
            };
            let mut sink = Vec::new();
            let mut lt = 0u64;
            let mv = McMove {
                data: df,
                ctl: cf,
                adv: None,
                alert: false,
            };
            let (n, _) = model.tick(s, mv, &mut sink, &mut lt);
            match index.get(&n) {
                Some(&i) => cur = i,
                None => break false, // off the reachable set: budget was exhausted
            }
        };
        for i in path {
            quiescent[i] = Some(verdict);
        }
        quiescent[start] = Some(verdict);
        if !verdict && !seen_codes.contains(&"NL502") {
            seen_codes.push("NL502");
            let trace = render_trace(
                &arena,
                &parent,
                start,
                "benign schedule cannot quiesce from here",
                arena[start],
                "NL502",
                "quiescence unreachable",
            );
            diags.push(Diagnostic::new(
                Pass::Model,
                "NL502",
                Severity::Error,
                format!(
                    "quiescence unreachable: the benign schedule does not terminate from a \
                     reachable state (counterexample #{})",
                    counterexamples.len() + 1
                ),
            ));
            counterexamples.push(trace);
            violation_count += 1;
        }
    }

    let terminal_states = arena.iter().filter(|s| s.arq_terminal()).count() as u64;
    let stats = McStats {
        states_explored: arena.len() as u64,
        transitions,
        ladder_transitions,
        forge_transitions,
        replay_transitions,
        terminal_states,
        max_depth_ticks: max_depth as u64,
        horizon_ticks,
        worst_schedule_ticks: worst_schedule,
        mark_permanent,
        violations: violation_count,
        counterexamples,
    };
    McResult {
        stats,
        diagnostics: diags,
    }
}

fn empty_stats() -> McStats {
    McStats {
        states_explored: 0,
        transitions: 0,
        ladder_transitions: 0,
        forge_transitions: 0,
        replay_transitions: 0,
        terminal_states: 0,
        max_depth_ticks: 0,
        horizon_ticks: 0,
        worst_schedule_ticks: 0,
        mark_permanent: false,
        violations: 0,
        counterexamples: Vec::new(),
    }
}

/// Pretty-prints the tick-by-tick path from the initial state to the
/// violating transition.
fn render_trace(
    arena: &[McState],
    parent: &[Option<(usize, String)>],
    at: usize,
    last_label: &str,
    final_state: McState,
    code: &str,
    message: &str,
) -> String {
    let mut steps: Vec<String> = Vec::new();
    let mut cur = at;
    while let Some((prev, label)) = parent.get(cur).and_then(|p| p.as_ref()) {
        steps.push(label.clone());
        cur = *prev;
    }
    steps.reverse();
    let mut out = format!("counterexample [{code}]: {message}\n");
    out.push_str(&format!("  tick 0  initial: {}\n", arena[cur]));
    for (i, label) in steps.iter().enumerate() {
        out.push_str(&format!("  tick {:<2} {label}\n", i + 1));
    }
    out.push_str(&format!("  tick {:<2} {last_label}\n", steps.len() + 1));
    out.push_str(&format!("  final:  {final_state}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shipped_arq() -> ArqConfig {
        ArqConfig::default_policy()
    }

    fn shipped_policy() -> RecoveryPolicy {
        RecoveryPolicy::default_policy()
    }

    #[test]
    fn shipped_configuration_proves_clean() {
        let r = model_check(&shipped_arq(), &shipped_policy());
        let errors: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:#?}");
        assert!(r.stats.mark_permanent);
        assert_eq!(r.stats.violations, 0);
        assert!(r.stats.counterexamples.is_empty());
        assert!(r.stats.states_explored > 100, "{}", r.stats.states_explored);
        assert!(r.stats.terminal_states > 0);
        assert!(r.stats.ladder_transitions > 0);
        // The clean proof covers the control-plane adversary: forged and
        // replayed controls were actually exercised, not vacuously absent.
        assert!(r.stats.forge_transitions > 0);
        assert!(r.stats.replay_transitions > 0);
    }

    /// Pinned negative: the *pre-hardening* trusting control rule, under
    /// the identical adversary, loses `NL504` — a forged ACK completes a
    /// message the application never received. This is the concrete trace
    /// that motivated the keyed-tag hardening; it must stay extractable so
    /// the hardened proof above is known to be non-vacuous.
    #[test]
    fn trusting_rule_yields_spoofed_ack_counterexample() {
        let r = model_check_trusting(&shipped_arq(), &shipped_policy());
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == "NL504" && d.severity == Severity::Error),
            "{:#?}",
            r.diagnostics
        );
        let trace = r
            .stats
            .counterexamples
            .iter()
            .find(|t| t.contains("NL504"))
            .expect("a false-completion trace");
        assert!(trace.contains("forged ACK"), "{trace}");
    }

    /// Acceptance: zeroing the dedup window yields a concrete duplicate-
    /// delivery (or false-failure) counterexample trace, plus the NL505
    /// arithmetic guard.
    #[test]
    fn zero_dedup_window_yields_counterexample_trace() {
        let arq = ArqConfig {
            retire_horizon: 0,
            ..shipped_arq()
        };
        let r = model_check(&arq, &shipped_policy());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == "NL505" && d.severity == Severity::Error));
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == "NL503" && d.severity == Severity::Error),
            "{:#?}",
            r.diagnostics
        );
        let trace = r
            .stats
            .counterexamples
            .iter()
            .find(|t| t.contains("NL503"))
            .expect("a duplicate-delivery trace");
        assert!(trace.contains("tick 0"), "{trace}");
        assert!(trace.contains("data delivered (#2)"), "{trace}");
    }

    /// Acceptance: removing the backoff cap makes the retry schedule
    /// outrun the retire horizon — the NL505 guard trips.
    #[test]
    fn uncapped_backoff_trips_horizon_guard() {
        let base = shipped_arq();
        let healthy_ticks: u64 = base.retire_horizon / base.ack_timeout;
        let arq = ArqConfig {
            // "Remove" the cap: let the exponent run to the full retry
            // budget. 2^0..2^8 sums past 500 ticks, far beyond the
            // shipped 200-tick horizon.
            backoff_cap: base.max_retries,
            ..base
        };
        let r = model_check(&arq, &shipped_policy());
        assert!(healthy_ticks < 512);
        assert!(!r.stats.mark_permanent);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == "NL505" && d.severity == Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn ladder_sweep_is_monotone_for_shipped_policy() {
        let mut diags = Vec::new();
        sweep_ladder(&shipped_policy(), &mut diags);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn model_runs_the_real_controller() {
        // The ladder abstraction must agree with a live controller run.
        let policy = shipped_policy();
        let mut live = RecoveryController::new();
        let mut count = 0u8;
        let mut quarantined = false;
        for _ in 0..policy.disable_threshold + 2 {
            let expect = live.note_alert(&policy, 0, 0);
            let (c, q, got) = ladder_step(&policy, count, quarantined);
            assert_eq!(got, expect);
            count = c;
            quarantined = q;
            assert_eq!(count as u32, live.count(0, 0));
            assert_eq!(quarantined, live.is_quarantined(0, 0));
        }
    }
}
