//! Adversarial-plane vocabulary: compromised-router attack models.
//!
//! The fault plane ([`crate::site`]) models *accidental* wire corruption;
//! this module names the *malicious* counterpart — a compromised router
//! that behaves correctly through every checked pipeline stage and then
//! manipulates traffic on its **output links**, i.e. after the NoCAlert
//! bank has already observed the cycle's wire values. Prasad et al.
//! (arXiv:1908.00289) show such packet-drop attacks mimic faults while
//! evading fault-oriented detection; the attack campaign measures what the
//! invariance bank + ARQ + containment stack of this reproduction actually
//! catches.
//!
//! Like the fault types, these are pure *specification* data (serde-able,
//! no behaviour): the runtime attacker state machine lives in `noc-sim`'s
//! `adversary` module, seeded deterministically from [`AttackSpec::seed`]
//! so campaigns stay bit-identical across worker counts.

use crate::config::NocConfig;
use crate::error::SimError;
use crate::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The behavioural model of a compromised router.
///
/// Every periodic model selects its victims deterministically (`every` =
/// act on every n-th candidate), so a given `(spec, traffic)` pair always
/// produces the same interference — the attack campaign's determinism
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Silently swallow every `every`-th whole packet (all flits of the
    /// selected worm) leaving the router — the fault-mimicking black-hole
    /// attack. No protocol invariant is violated on the wire; only the
    /// end-to-end transport can notice.
    PacketDrop {
        /// Drop every n-th packet (1 = drop all).
        every: u32,
    },
    /// Drop every `every`-th individual flit, tearing worms apart and
    /// leaking credits — the clumsy variant that *does* disturb protocol
    /// state downstream.
    FlitDrop {
        /// Drop every n-th flit (1 = drop all).
        every: u32,
    },
    /// Set the corrupted (EDC-failure) bit on every `every`-th flit after
    /// the checkers have seen it — payload corruption past the
    /// observation surface.
    PayloadCorrupt {
        /// Corrupt every n-th flit (1 = corrupt all).
        every: u32,
    },
    /// Rewrite the destination of every `every`-th packet to a consistent
    /// wrong-but-reachable node. All downstream routing is locally legal
    /// (each hop recomputes a minimal route toward the forged
    /// destination), so no turn-model checker fires at the manipulating
    /// hop.
    Misroute {
        /// Misroute every n-th packet (1 = misroute all).
        every: u32,
    },
    /// Black-hole every `every`-th traversing data packet *and* forge an
    /// acknowledgement for it towards the sender, attempting to close the
    /// ARQ window without delivery — the spoofing attack the hardened
    /// transport's per-packet auth tags exist for.
    AckSpoof {
        /// Attack every n-th data packet (1 = attack all).
        every: u32,
    },
    /// Record genuine control packets (ACK/NACK) traversing the router
    /// and re-emit bit-faithful copies later (valid auth tag, stale
    /// sequence) — the replay attack.
    CtlReplay {
        /// Replay after every n-th traversing packet (1 = most frequent).
        every: u32,
    },
    /// Suppress the router's own alert wire: assertions raised *at* the
    /// compromised router never reach the containment plane. Meaningful
    /// when combined with a co-located fault (the campaign arms one).
    AlertSuppress,
    /// Flood the containment plane with fabricated alerts against the
    /// router's own input VCs — a denial-of-service attempt against the
    /// escalation ladder.
    AlertFlood {
        /// Fabricated alerts raised per cycle.
        per_cycle: u8,
    },
}

impl AttackKind {
    /// Short stable name for reports and matrix rows.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::PacketDrop { .. } => "packet-drop",
            AttackKind::FlitDrop { .. } => "flit-drop",
            AttackKind::PayloadCorrupt { .. } => "payload-corrupt",
            AttackKind::Misroute { .. } => "misroute",
            AttackKind::AckSpoof { .. } => "ack-spoof",
            AttackKind::CtlReplay { .. } => "ctl-replay",
            AttackKind::AlertSuppress => "alert-suppress",
            AttackKind::AlertFlood { .. } => "alert-flood",
        }
    }

    /// The attack's intensity parameter (selection period or flood rate),
    /// normalized for matrix rows: smaller = more aggressive.
    pub fn intensity(&self) -> u32 {
        match *self {
            AttackKind::PacketDrop { every }
            | AttackKind::FlitDrop { every }
            | AttackKind::PayloadCorrupt { every }
            | AttackKind::Misroute { every }
            | AttackKind::AckSpoof { every }
            | AttackKind::CtlReplay { every } => every,
            AttackKind::AlertSuppress => 1,
            AttackKind::AlertFlood { per_cycle } => per_cycle as u32,
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AttackKind::AlertSuppress => write!(f, "{}", self.name()),
            AttackKind::AlertFlood { per_cycle } => {
                write!(f, "{}(per_cycle={per_cycle})", self.name())
            }
            _ => write!(f, "{}(every={})", self.name(), self.intensity()),
        }
    }
}

/// One compromised-router attack: who, how, from when, and the seed of
/// the attacker's private RNG (victim selection among equivalent choices,
/// forged-tag guesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttackSpec {
    /// The compromised router.
    pub router: u16,
    /// Behavioural model.
    pub kind: AttackKind,
    /// First cycle the attacker acts.
    pub start: Cycle,
    /// Seed of the attacker's deterministic private RNG.
    pub seed: u64,
}

impl AttackSpec {
    /// Checks the spec against a configuration: the compromised router
    /// must exist and the behavioural parameters must be well-defined.
    /// Quarantine is a *runtime* property and is checked where the
    /// network state is known (`Network::arm_attack`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AttackSpecInvalid`] naming the offending
    /// parameter.
    pub fn validate(&self, cfg: &NocConfig) -> Result<(), SimError> {
        if self.router as usize >= cfg.mesh.len() {
            return Err(SimError::AttackSpecInvalid {
                router: self.router,
                reason: "compromised router is outside the mesh",
            });
        }
        let reason = match self.kind {
            AttackKind::PacketDrop { every }
            | AttackKind::FlitDrop { every }
            | AttackKind::PayloadCorrupt { every }
            | AttackKind::Misroute { every }
            | AttackKind::AckSpoof { every }
            | AttackKind::CtlReplay { every } => {
                (every == 0).then_some("attack selection period must be non-zero")
            }
            AttackKind::AlertSuppress => None,
            AttackKind::AlertFlood { per_cycle } => {
                (per_cycle == 0).then_some("alert flood rate must be non-zero (never acts)")
            }
        };
        match reason {
            Some(reason) => Err(SimError::AttackSpecInvalid {
                router: self.router,
                reason,
            }),
            None => Ok(()),
        }
    }
}

impl fmt::Display for AttackSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at router {} from cycle {} (seed {})",
            self.kind, self.router, self.start, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: AttackKind) -> AttackSpec {
        AttackSpec {
            router: 3,
            kind,
            start: 100,
            seed: 7,
        }
    }

    #[test]
    fn validate_accepts_well_formed_specs() {
        let cfg = NocConfig::small_test();
        for kind in [
            AttackKind::PacketDrop { every: 1 },
            AttackKind::FlitDrop { every: 4 },
            AttackKind::PayloadCorrupt { every: 2 },
            AttackKind::Misroute { every: 3 },
            AttackKind::AckSpoof { every: 1 },
            AttackKind::CtlReplay { every: 2 },
            AttackKind::AlertSuppress,
            AttackKind::AlertFlood { per_cycle: 2 },
        ] {
            assert!(spec(kind).validate(&cfg).is_ok(), "{kind}");
        }
    }

    #[test]
    fn validate_rejects_nonexistent_router() {
        let cfg = NocConfig::small_test();
        let mut s = spec(AttackKind::PacketDrop { every: 1 });
        s.router = cfg.mesh.len() as u16;
        match s.validate(&cfg) {
            Err(SimError::AttackSpecInvalid { router, .. }) => assert_eq!(router, s.router),
            other => panic!("expected AttackSpecInvalid, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        let cfg = NocConfig::small_test();
        assert!(spec(AttackKind::PacketDrop { every: 0 })
            .validate(&cfg)
            .is_err());
        assert!(spec(AttackKind::AckSpoof { every: 0 })
            .validate(&cfg)
            .is_err());
        assert!(spec(AttackKind::AlertFlood { per_cycle: 0 })
            .validate(&cfg)
            .is_err());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(
            spec(AttackKind::AckSpoof { every: 2 }).kind.to_string(),
            "ack-spoof(every=2)"
        );
        assert_eq!(AttackKind::AlertSuppress.to_string(), "alert-suppress");
    }
}
