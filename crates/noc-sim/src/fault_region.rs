//! The fault-region map: online aggregation of dead links and quarantined
//! routers into rectangular fault regions, plus the deadlock-free
//! up*/down* routing tables that steer traffic around them (DESIGN.md §13).
//!
//! ## Region formation (FASHION-style, arXiv:1702.02313)
//!
//! The containment layer reports two kinds of damage: a **dead link**
//! (an output port fenced after its downstream VCs were quarantined) and
//! a **faulty router** (explicitly taken out of service). A router whose
//! every mesh link is dead is faulty by implication. Faulty routers are
//! clustered under 8-neighbourhood adjacency, each cluster is replaced by
//! its bounding rectangle, every router inside a rectangle is absorbed
//! (out of service even if healthy), and the closure iterates until no
//! new router is absorbed. Convex region boundaries are what a single
//! turn model can route around safely.
//!
//! ## Deadlock freedom: up*/down* over the live graph
//!
//! Each connected component of the live graph (non-absorbed routers,
//! non-dead links) gets a spanning-tree rank order: the root is the
//! component's smallest node id, `rank(n) = (BFS level from root, id)`
//! lexicographically — packed as `(level << 16) | id` so distinct nodes
//! always have distinct ranks. A hop `a → b` is **up** when
//! `rank(b) < rank(a)` (toward the root) and **down** otherwise. The one
//! forbidden transition is **down → up**: a packet may climb toward the
//! root any number of hops, but once it descends it must keep descending.
//! Any cyclic channel-dependency would need either a monotonically
//! decreasing rank cycle (impossible), a monotonically increasing one
//! (impossible), or a down→up transition (forbidden) — so the channel
//! dependency graph is acyclic for *every* region set, which `noc-lint`
//! re-verifies mechanically per region set (NL216).
//!
//! ## Tables
//!
//! Routing is table-driven: for every destination the map runs a
//! backward BFS over the doubled graph `(router, phase)` — phase *free*
//! (may still go up) or *committed* (has gone down) — and derives two
//! per-router next-hop rows, `next_up` (consulted in the free phase) and
//! `next_down` (consulted once committed). The phase is locally
//! derivable from the arrival port: arriving over a down hop means the
//! packet is committed. Unreachable destinations get a sentinel that the
//! router resolves to `Local` — the flit is ejected where it is and the
//! ARQ transport's give-up accounting turns it into an *orphan* rather
//! than letting it pile up against a region boundary.

use noc_types::geometry::{Coord, Direction, Mesh, NodeId};
use noc_types::region::FaultRect;
use serde::{Deserialize, Serialize};

/// Row sentinel: no route to this destination from this router/phase.
/// `Direction::from_bits(7)` is `None`, so a corrupted read of the
/// sentinel can never alias a real direction.
pub const NO_ROUTE: u8 = 7;

const INF: u16 = u16::MAX;
/// Cardinal directions (the mesh link directions), in index order.
const CARDINALS: [Direction; 4] = [
    Direction::North,
    Direction::East,
    Direction::South,
    Direction::West,
];

/// Cumulative growth counters of the map (never reset; feed
/// [`crate::RecoveryStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionGrowth {
    /// Distinct rectangles ever formed (a rectangle that grows counts
    /// again: each shape is a new containment decision).
    pub regions_formed: u64,
    /// Routers ever newly absorbed into a region.
    pub routers_absorbed: u64,
}

/// The online fault-region map of one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRegionMap {
    width: u8,
    height: u8,
    /// Dead mesh links, per node per cardinal direction; kept symmetric
    /// (`dead[u][d] == dead[v][opposite(d)]`).
    dead: Vec<[bool; 4]>,
    /// Routers explicitly reported faulty (quarantined whole).
    faulty: Vec<bool>,
    /// Routers inside some region rectangle (superset of `faulty` once
    /// rebuilt).
    absorbed: Vec<bool>,
    /// Current region rectangles, sorted.
    regions: Vec<FaultRect>,
    /// Live-graph component id per router; `u32::MAX` for absorbed ones.
    component: Vec<u32>,
    /// up*/down* rank per router: `(BFS level << 16) | id`.
    rank: Vec<u32>,
    /// Per-destination next-hop in the free (may-still-go-up) phase,
    /// flattened `[router * n + dest]`; direction bits or [`NO_ROUTE`].
    next_up: Vec<u8>,
    /// Per-destination next-hop once committed downward.
    next_down: Vec<u8>,
    /// Hop distance to the destination in the free phase, or [`INF`].
    dist_up: Vec<u16>,
    /// Hop distance once committed downward, or [`INF`].
    dist_down: Vec<u16>,
    /// More than one live component remains.
    partitioned: bool,
    growth: RegionGrowth,
}

impl FaultRegionMap {
    /// An empty (disengaged) map for `mesh`: no damage, no tables.
    pub fn new(mesh: Mesh) -> FaultRegionMap {
        let n = mesh.len();
        FaultRegionMap {
            width: mesh.width(),
            height: mesh.height(),
            dead: vec![[false; 4]; n],
            faulty: vec![false; n],
            absorbed: vec![false; n],
            regions: Vec::new(),
            component: vec![0; n],
            rank: Vec::new(),
            next_up: Vec::new(),
            next_down: Vec::new(),
            dist_up: Vec::new(),
            dist_down: Vec::new(),
            partitioned: false,
            growth: RegionGrowth::default(),
        }
    }

    fn mesh(&self) -> Mesh {
        Mesh::new(self.width, self.height)
    }

    fn len(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Whether any damage has been recorded. A disengaged map installs
    /// no tables, so routers fall back to the baseline algorithm
    /// bit-identically.
    pub fn engaged(&self) -> bool {
        !self.regions.is_empty() || self.dead.iter().any(|d| d.iter().any(|&x| x))
    }

    /// Records the mesh link at `node` toward `dir` as dead (both
    /// directions of travel). Returns `true` when the link was alive.
    /// Call [`FaultRegionMap::rebuild`] afterwards.
    pub fn kill_link(&mut self, node: NodeId, dir: Direction) -> bool {
        if !dir.is_cardinal() {
            return false;
        }
        let Some(nb) = self.mesh().neighbor(node, dir) else {
            return false;
        };
        let i = node.index();
        let was = self.dead[i][dir.index()];
        self.dead[i][dir.index()] = true;
        self.dead[nb.index()][dir.opposite().index()] = true;
        !was
    }

    /// Reports a whole router faulty. Returns `true` when newly faulty.
    /// Call [`FaultRegionMap::rebuild`] afterwards.
    pub fn mark_router_faulty(&mut self, node: NodeId) -> bool {
        let was = self.faulty[node.index()];
        self.faulty[node.index()] = true;
        !was
    }

    /// Whether the link at `node` toward `dir` is dead.
    pub fn link_dead(&self, node: NodeId, dir: Direction) -> bool {
        dir.is_cardinal() && self.dead[node.index()][dir.index()]
    }

    /// Dead mesh links (each link counted once).
    pub fn dead_links(&self) -> u32 {
        let total: u32 = self
            .dead
            .iter()
            .map(|d| d.iter().filter(|&&x| x).count() as u32)
            .sum();
        total / 2
    }

    /// Whether `node` has been absorbed into a region.
    pub fn absorbed(&self, node: NodeId) -> bool {
        self.absorbed.get(node.index()).copied().unwrap_or(true)
    }

    /// Current region rectangles.
    pub fn regions(&self) -> &[FaultRect] {
        &self.regions
    }

    /// Routers currently absorbed into regions.
    pub fn absorbed_count(&self) -> u32 {
        self.absorbed.iter().filter(|&&a| a).count() as u32
    }

    /// Whether the live graph has split into more than one component.
    pub fn partitioned(&self) -> bool {
        self.partitioned
    }

    /// Number of live components (0 when every router is absorbed).
    pub fn live_components(&self) -> u32 {
        self.component
            .iter()
            .filter(|&&c| c != u32::MAX)
            .max()
            .map(|&c| c + 1)
            .unwrap_or(0)
    }

    /// Cumulative growth counters.
    pub fn growth(&self) -> RegionGrowth {
        self.growth
    }

    /// Whether `a` can still reach `b` over the live graph.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        !self.absorbed(a)
            && !self.absorbed(b)
            && self.component[a.index()] == self.component[b.index()]
    }

    /// The next-hop rows of one router: `(next_up, next_down)`, each
    /// indexed by destination node id. Empty when disengaged.
    pub fn router_rows(&self, node: NodeId) -> (&[u8], &[u8]) {
        let n = self.len();
        if self.next_up.is_empty() {
            return (&[], &[]);
        }
        let lo = node.index() * n;
        (&self.next_up[lo..lo + n], &self.next_down[lo..lo + n])
    }

    /// Per arrival port of `node`: `true` when the hop *into* `node`
    /// over that port was a down hop (the packet is committed). Local
    /// arrivals (injection) are always free.
    pub fn down_in(&self, node: NodeId) -> [bool; Direction::COUNT] {
        let mut out = [false; Direction::COUNT];
        if self.rank.is_empty() || self.absorbed(node) {
            return out;
        }
        let mesh = self.mesh();
        for d in CARDINALS {
            let Some(nb) = mesh.neighbor(node, d) else {
                continue;
            };
            if self.link_dead(node, d) || self.absorbed(nb) {
                continue;
            }
            // The flit arrived over the hop nb → node; that hop is down
            // when it moves away from the root (rank increases).
            out[d.index()] = self.rank[node.index()] > self.rank[nb.index()];
        }
        out
    }

    /// The up*/down* rank of a live router (`(level << 16) | id`), used
    /// by the prover to re-check phase legality independently.
    pub fn rank_of(&self, node: NodeId) -> Option<u32> {
        if self.rank.is_empty() || self.absorbed(node) {
            None
        } else {
            Some(self.rank[node.index()])
        }
    }

    /// Next hop for a packet at `node` headed to `dest`, given whether
    /// it is already committed downward. `None` means no route (the
    /// router ejects the flit locally; the transport's give-up
    /// accounting owns it from there).
    pub fn next_hop(&self, node: NodeId, dest: NodeId, committed: bool) -> Option<Direction> {
        if self.next_up.is_empty() {
            return None;
        }
        let idx = node.index() * self.len() + dest.index();
        let bits = if committed {
            self.next_down[idx]
        } else {
            self.next_up[idx]
        };
        Direction::from_bits(bits as u64)
    }

    /// Hop distance from `node` to `dest` in the given phase, when a
    /// route exists.
    pub fn distance(&self, node: NodeId, dest: NodeId, committed: bool) -> Option<u16> {
        if self.dist_up.is_empty() {
            return None;
        }
        let idx = node.index() * self.len() + dest.index();
        let d = if committed {
            self.dist_down[idx]
        } else {
            self.dist_up[idx]
        };
        (d != INF).then_some(d)
    }

    /// An FNV-1a digest over the map's damage record, regions and routing
    /// tables — the campaign checkpoints pin this per epoch so `--resume`
    /// can verify the re-derived routing state bit-for-bit.
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for d in &self.dead {
            let mut bits = 0u8;
            for (i, &x) in d.iter().enumerate() {
                bits |= (x as u8) << i;
            }
            eat(bits);
        }
        for (&f, &a) in self.faulty.iter().zip(&self.absorbed) {
            eat((f as u8) | ((a as u8) << 1));
        }
        for r in &self.regions {
            eat(r.x0);
            eat(r.y0);
            eat(r.x1);
            eat(r.y1);
        }
        eat(self.partitioned as u8);
        for &b in self.next_up.iter().chain(&self.next_down) {
            eat(b);
        }
        h
    }

    /// Recomputes regions, components, ranks and routing tables from the
    /// recorded damage. Returns `true` when the map is engaged.
    pub fn rebuild(&mut self) -> bool {
        let n = self.len();
        let mesh = self.mesh();
        let prev_regions = std::mem::take(&mut self.regions);
        let prev_absorbed = std::mem::take(&mut self.absorbed);

        // 1. Region closure: faulty seeds → 8-neighbourhood clusters →
        //    bounding rectangles → absorb interiors → iterate.
        let mut down = self.faulty.clone();
        for node in mesh.nodes() {
            let i = node.index();
            if down[i] {
                continue;
            }
            let isolated = CARDINALS.iter().all(|&d| {
                mesh.neighbor(node, d)
                    .map(|_| self.dead[i][d.index()])
                    .unwrap_or(true)
            });
            if isolated {
                down[i] = true;
            }
        }
        let mut rects: Vec<FaultRect> = mesh
            .nodes()
            .filter(|node| down[node.index()])
            .map(|node| FaultRect::point(mesh.coord(node)))
            .collect();
        // Merge adjacent rectangles to a fixpoint; the bounding box of two
        // merged clusters absorbs the routers between them automatically.
        loop {
            let mut merged = false;
            let mut i = 0;
            while i < rects.len() {
                let mut j = i + 1;
                while j < rects.len() {
                    if rects[i].adjacent(&rects[j]) {
                        let other = rects.swap_remove(j);
                        rects[i].absorb(Coord::new(other.x0, other.y0));
                        rects[i].absorb(Coord::new(other.x1, other.y1));
                        merged = true;
                    } else {
                        j += 1;
                    }
                }
                i += 1;
            }
            if !merged {
                break;
            }
        }
        rects.sort_unstable();
        let mut absorbed = vec![false; n];
        for node in mesh.nodes() {
            let c = mesh.coord(node);
            if rects.iter().any(|r| r.contains(c)) {
                absorbed[node.index()] = true;
            }
        }

        // 2. Growth accounting against the previous rebuild.
        for r in &rects {
            if !prev_regions.contains(r) {
                self.growth.regions_formed += 1;
            }
        }
        for (i, now) in absorbed.iter().enumerate() {
            if *now && !prev_absorbed.get(i).copied().unwrap_or(false) {
                self.growth.routers_absorbed += 1;
            }
        }
        self.regions = rects;
        self.absorbed = absorbed;

        // 3. Live components and ranks (BFS from each component's
        //    smallest node id).
        let mut component = vec![u32::MAX; n];
        let mut rank = vec![u32::MAX; n];
        let mut queue: Vec<NodeId> = Vec::with_capacity(n);
        let mut components = 0u32;
        for root in mesh.nodes() {
            let ri = root.index();
            if self.absorbed[ri] || component[ri] != u32::MAX {
                continue;
            }
            component[ri] = components;
            rank[ri] = ri as u32; // level 0
            queue.clear();
            queue.push(root);
            let mut head = 0;
            while head < queue.len() {
                let cur = queue[head];
                head += 1;
                let level = rank[cur.index()] >> 16;
                for d in CARDINALS {
                    let Some(nb) = mesh.neighbor(cur, d) else {
                        continue;
                    };
                    let bi = nb.index();
                    if self.absorbed[bi]
                        || self.dead[cur.index()][d.index()]
                        || component[bi] != u32::MAX
                    {
                        continue;
                    }
                    component[bi] = components;
                    rank[bi] = ((level + 1) << 16) | bi as u32;
                    queue.push(nb);
                }
            }
            components += 1;
        }
        self.component = component;
        self.rank = rank;
        self.partitioned = components > 1;

        if !self.engaged() {
            self.next_up.clear();
            self.next_down.clear();
            self.dist_up.clear();
            self.dist_down.clear();
            return false;
        }

        // 4. Per-destination doubled-graph backward BFS. States are
        //    (router, phase): phase 0 = free (may still go up), phase 1 =
        //    committed downward. A free packet may take an up hop (stays
        //    free) or a down hop (commits); a committed packet may only
        //    take down hops.
        self.next_up = vec![NO_ROUTE; n * n];
        self.next_down = vec![NO_ROUTE; n * n];
        self.dist_up = vec![INF; n * n];
        self.dist_down = vec![INF; n * n];
        let mut bfs: Vec<(NodeId, bool)> = Vec::with_capacity(2 * n);
        for dest in mesh.nodes() {
            let di = dest.index();
            if self.absorbed[di] {
                continue;
            }
            self.dist_up[di * n + di] = 0;
            self.dist_down[di * n + di] = 0;
            self.next_up[di * n + di] = Direction::Local.bits() as u8;
            self.next_down[di * n + di] = Direction::Local.bits() as u8;
            bfs.clear();
            bfs.push((dest, false));
            bfs.push((dest, true));
            let mut head = 0;
            while head < bfs.len() {
                let (x, committed) = bfs[head];
                head += 1;
                let xi = x.index();
                let dist_here = if committed {
                    self.dist_down[xi * n + di]
                } else {
                    self.dist_up[xi * n + di]
                };
                // Predecessors y with a live hop y → x.
                for d in CARDINALS {
                    let Some(y) = mesh.neighbor(x, d) else {
                        continue;
                    };
                    let yi = y.index();
                    if self.absorbed[yi] || self.dead[xi][d.index()] {
                        continue;
                    }
                    let hop_dir = d.opposite(); // the direction y takes
                    let hop_down = self.rank[xi] > self.rank[yi];
                    if committed {
                        if hop_down {
                            // y (committed) --down--> x (committed), and
                            // y (free) --down--> x (committed).
                            if self.dist_down[yi * n + di] == INF {
                                self.dist_down[yi * n + di] = dist_here + 1;
                                self.next_down[yi * n + di] = hop_dir.bits() as u8;
                                bfs.push((y, true));
                            }
                            if self.dist_up[yi * n + di] == INF {
                                self.dist_up[yi * n + di] = dist_here + 1;
                                self.next_up[yi * n + di] = hop_dir.bits() as u8;
                                bfs.push((y, false));
                            }
                        }
                    } else if !hop_down {
                        // y (free) --up--> x (free).
                        if self.dist_up[yi * n + di] == INF {
                            self.dist_up[yi * n + di] = dist_here + 1;
                            self.next_up[yi * n + di] = hop_dir.bits() as u8;
                            bfs.push((y, false));
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{route, turn_legal};
    use noc_types::config::RoutingAlgorithm;

    fn map(w: u8, h: u8) -> FaultRegionMap {
        FaultRegionMap::new(Mesh::new(w, h))
    }

    /// Walks the tables from every live source to `dest`, asserting the
    /// up*/down* phase discipline, strict distance decrease, u-turn
    /// freedom and arrival. Returns the number of delivered pairs.
    fn walk_all(m: &FaultRegionMap, mesh: Mesh) -> usize {
        let mut delivered = 0;
        for src in mesh.nodes() {
            for dest in mesh.nodes() {
                if m.absorbed(src) || m.absorbed(dest) {
                    continue;
                }
                if !m.reachable(src, dest) {
                    assert!(
                        m.next_hop(src, dest, false).is_none(),
                        "unreachable {src:?}->{dest:?} must get the sentinel"
                    );
                    continue;
                }
                let mut cur = src;
                let mut committed = false;
                let mut in_port = Direction::Local;
                let mut hops = 0u16;
                let mut dist = m.distance(cur, dest, committed).expect("reachable");
                loop {
                    let out = m
                        .next_hop(cur, dest, committed)
                        .expect("reachable pair lost its route mid-walk");
                    if out == Direction::Local {
                        assert_eq!(cur, dest, "ejected short of the destination");
                        break;
                    }
                    assert!(
                        turn_legal(RoutingAlgorithm::FaultRegion, in_port, out),
                        "u-turn {in_port}->{out} at {cur:?}"
                    );
                    assert!(!m.link_dead(cur, out), "routed over a dead link at {cur:?}");
                    let next = mesh.neighbor(cur, out).expect("routed off-mesh");
                    assert!(!m.absorbed(next), "routed into a region at {cur:?}");
                    let down = m.rank_of(next).unwrap() > m.rank_of(cur).unwrap();
                    assert!(
                        !committed || down,
                        "down→up violation at {cur:?} toward {dest:?}"
                    );
                    committed = committed || down;
                    let ndist = m.distance(next, dest, committed).expect("route continues");
                    assert_eq!(ndist + 1, dist, "distance must fall by one per hop");
                    dist = ndist;
                    in_port = out.opposite();
                    cur = next;
                    hops += 1;
                    assert!(hops as usize <= 4 * mesh.len(), "route did not converge");
                }
                delivered += 1;
            }
        }
        delivered
    }

    #[test]
    fn healthy_map_is_disengaged() {
        let mut m = map(4, 4);
        assert!(!m.engaged());
        assert!(!m.rebuild());
        assert!(m.router_rows(NodeId(5)).0.is_empty());
        assert!(!m.partitioned());
        assert_eq!(m.dead_links(), 0);
    }

    #[test]
    fn single_dead_link_routes_every_pair() {
        let mesh = Mesh::new(4, 4);
        let mut m = map(4, 4);
        assert!(m.kill_link(NodeId(5), Direction::East));
        assert!(!m.kill_link(NodeId(5), Direction::East), "idempotent");
        assert!(m.rebuild());
        assert!(m.engaged());
        assert!(!m.partitioned());
        assert_eq!(m.dead_links(), 1);
        assert!(m.link_dead(NodeId(5), Direction::East));
        assert!(m.link_dead(NodeId(6), Direction::West));
        assert_eq!(m.regions().len(), 0, "one dead link forms no region");
        assert_eq!(walk_all(&m, mesh), 16 * 16);
    }

    #[test]
    fn every_single_dead_link_on_the_canonical_mesh_stays_live() {
        let mesh = Mesh::new(8, 8);
        for node in mesh.nodes() {
            for d in [Direction::East, Direction::North] {
                if mesh.neighbor(node, d).is_none() {
                    continue;
                }
                let mut m = map(8, 8);
                assert!(m.kill_link(node, d));
                m.rebuild();
                assert!(!m.partitioned());
                assert_eq!(walk_all(&m, mesh), 64 * 64, "dead {node:?} {d}");
            }
        }
    }

    #[test]
    fn faulty_router_forms_a_region_and_traffic_detours() {
        let mesh = Mesh::new(4, 4);
        let mut m = map(4, 4);
        assert!(m.mark_router_faulty(NodeId(5)));
        m.rebuild();
        assert_eq!(m.regions().len(), 1);
        assert!(m.absorbed(NodeId(5)));
        assert_eq!(m.absorbed_count(), 1);
        assert!(!m.partitioned());
        // 15 live nodes, all pairs deliverable.
        assert_eq!(walk_all(&m, mesh), 15 * 15);
        let g = m.growth();
        assert_eq!(g.regions_formed, 1);
        assert_eq!(g.routers_absorbed, 1);
    }

    #[test]
    fn diagonal_faults_merge_into_one_rectangle() {
        let mesh = Mesh::new(6, 6);
        let mut m = map(6, 6);
        m.mark_router_faulty(mesh.node(Coord::new(2, 2)));
        m.mark_router_faulty(mesh.node(Coord::new(3, 3)));
        m.rebuild();
        assert_eq!(m.regions().len(), 1, "8-neighbourhood clustering merges");
        let r = m.regions()[0];
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (2, 2, 3, 3));
        assert_eq!(
            m.absorbed_count(),
            4,
            "the bounding box absorbs 2 healthy routers"
        );
        assert_eq!(walk_all(&m, mesh), 32 * 32);
    }

    #[test]
    fn isolated_router_becomes_a_region_not_a_partition() {
        let mesh = Mesh::new(4, 4);
        let mut m = map(4, 4);
        // Cut every link of the centre node (1,1): it is fully isolated,
        // which the closure treats as an absorbed single-router region —
        // the rest of the mesh remains one live component.
        let node = mesh.node(Coord::new(1, 1));
        for d in CARDINALS {
            m.kill_link(node, d);
        }
        m.rebuild();
        assert!(m.absorbed(node));
        assert!(
            !m.partitioned(),
            "an isolated router is a region, not a partition"
        );
        assert_eq!(walk_all(&m, mesh), 15 * 15);
    }

    #[test]
    fn column_cut_partitions_explicitly() {
        let mesh = Mesh::new(4, 4);
        let mut m = map(4, 4);
        for y in 0..4u8 {
            m.kill_link(mesh.node(Coord::new(1, y)), Direction::East);
        }
        m.rebuild();
        assert!(m.partitioned(), "a full column cut splits the mesh");
        // Cross-cut pairs are unreachable and sentinel-routed; same-side
        // pairs still deliver.
        let west = mesh.node(Coord::new(0, 0));
        let east = mesh.node(Coord::new(3, 3));
        assert!(!m.reachable(west, east));
        assert!(m.next_hop(west, east, false).is_none());
        assert!(m.reachable(west, mesh.node(Coord::new(1, 3))));
        walk_all(&m, mesh);
    }

    #[test]
    fn fault_free_tables_match_xy_when_forced() {
        // Even engaged, a far-away region leaves most routes intact; this
        // pins that the table route length equals the Manhattan distance
        // whenever no region interferes (up*/down* over an intact mesh
        // region is distance-optimal on the live graph, not necessarily
        // Manhattan-minimal — so only the region-free case is pinned).
        let mesh = Mesh::new(4, 4);
        let mut m = map(4, 4);
        m.kill_link(NodeId(0), Direction::East);
        m.rebuild();
        let src = mesh.node(Coord::new(2, 2));
        let dest = mesh.node(Coord::new(3, 3));
        assert_eq!(m.distance(src, dest, false), Some(2));
        // And the delegate arm stays XY for untouched routers.
        assert_eq!(
            route(
                RoutingAlgorithm::FaultRegion,
                Coord::new(2, 2),
                Coord::new(3, 3)
            ),
            route(RoutingAlgorithm::XY, Coord::new(2, 2), Coord::new(3, 3)),
        );
    }

    #[test]
    fn digest_tracks_state_and_growth_is_cumulative() {
        let mut m = map(4, 4);
        m.rebuild();
        let d0 = m.state_digest();
        m.kill_link(NodeId(5), Direction::East);
        m.rebuild();
        let d1 = m.state_digest();
        assert_ne!(d0, d1);
        m.mark_router_faulty(NodeId(10));
        m.rebuild();
        let d2 = m.state_digest();
        assert_ne!(d1, d2);
        // Re-deriving the same damage on a fresh map reproduces the
        // digest (what `--resume` relies on).
        let mut fresh = map(4, 4);
        fresh.kill_link(NodeId(5), Direction::East);
        fresh.rebuild();
        fresh.mark_router_faulty(NodeId(10));
        fresh.rebuild();
        assert_eq!(fresh.state_digest(), d2);
    }
}
