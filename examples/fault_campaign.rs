//! A miniature fault-injection campaign: sweep a structured sample of
//! single-bit transient fault sites on the paper-baseline 8×8 mesh, and
//! print the Figure-6-style coverage breakdown plus the Figure-7-style
//! detection-latency summary for NoCAlert, NoCAlert-Cautious and ForEVeR.
//!
//! Run with: `cargo run --release --example fault_campaign -- [n_sites] [warmup]`
//! (defaults: 200 sites, warm-up 0 — the paper's "cycle 0" instant).

use golden::stats;
use nocalert_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_sites: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let warmup: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    let mut noc = NocConfig::paper_baseline();
    noc.injection_rate = 0.10;
    let cc = CampaignConfig::paper_defaults(noc, warmup);

    println!("== mini fault campaign: {n_sites} sites, injection at cycle {warmup} ==");
    let campaign = Campaign::new(cc);
    let universe = enumerate_sites(&campaign.config().noc);
    println!("site universe: {} single-bit locations", universe.len());
    let sites = fault::sample::stride(&universe, n_sites);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t0 = std::time::Instant::now();
    let results = campaign.run_many(&sites, threads);
    println!(
        "{} injections in {:.1}s on {threads} threads",
        results.len(),
        t0.elapsed().as_secs_f64()
    );

    let hit = results.iter().filter(|r| r.fault_hits > 0).count();
    let malicious = results.iter().filter(|r| r.malicious()).count();
    println!("faults that touched a live wire: {hit}; malicious at network level: {malicious}");

    for d in [
        Detector::NoCAlert,
        Detector::NoCAlertCautious,
        Detector::ForEVeR,
    ] {
        let b = stats::breakdown(&results, d);
        println!(
            "{d:?}: TP {:5.2}%  FP {:5.2}%  TN {:5.2}%  FN {:5.2}%",
            b.tp, b.fp, b.tn, b.fn_
        );
    }

    let cdf = stats::latency_cdf(&results, Detector::NoCAlert);
    if !cdf.is_empty() {
        println!(
            "NoCAlert TP latency: {:.1}% instantaneous, {:.1}% <= 9 cycles, max {} cycles",
            stats::cdf_at(&cdf, 0),
            stats::cdf_at(&cdf, 9),
            cdf.last().unwrap().0
        );
    }
    let fcdf = stats::latency_cdf(&results, Detector::ForEVeR);
    if !fcdf.is_empty() {
        println!(
            "ForEVeR  TP latency: {:.1}% instantaneous, median ~{} cycles, max {} cycles",
            stats::cdf_at(&fcdf, 0),
            fcdf.iter()
                .find(|(_, p)| *p >= 50.0)
                .map(|(l, _)| *l)
                .unwrap_or(0),
            fcdf.last().unwrap().0
        );
    }
}
