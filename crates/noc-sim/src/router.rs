//! The five-stage input-buffered VC router (Section 3.1 of the paper).
//!
//! Pipeline: **RC → VA → SA → ST(XBAR) → LT**, with VA and SA each split
//! into a local (per-input-port) and a global (per-output-port) sub-stage.
//! Header flits take all stages; body/tail flits start at SA. Wormhole
//! switching with credit-based flow control; atomic or non-atomic VCs.
//!
//! ## Evaluation order and timing
//!
//! Within one cycle the stages are evaluated in *reverse* pipeline order —
//! ST, then SA, then VA, then RC, then buffer-write (BW) — so a flit
//! advances at most one stage per cycle, giving the classical 5-cycle
//! per-hop latency (RC, VA, SA, ST, LT) for headers and 3 cycles for body
//! flits, plus queueing.
//!
//! ## Fault honesty
//!
//! Every module-boundary wire is routed through [`FaultPlane::xf`] and the
//! *transformed* value drives both the downstream logic and the observation
//! record. Consequences are modelled physically rather than sanitized:
//!
//! * reading an "empty" FIFO replays the stale slot (new-flit generation),
//! * a non-one-hot crossbar column ORs two flits into a corrupted one,
//! * a non-one-hot crossbar row duplicates a flit (multicast),
//! * an overrun buffer write destroys the oldest flit,
//! * a suppressed read-enable silently keeps a flit that the crossbar
//!   expected, and so on.

use crate::arbiter::RoundRobin;
use crate::fault_plane::FaultPlane;
use crate::routing::route;
use crate::vc::{state, OutputPort, VirtualChannel};
use noc_types::config::{BufferPolicy, NocConfig};
use noc_types::flit::{Flit, FlitOrigin};
use noc_types::geometry::{Coord, Direction};
use noc_types::record::{
    CycleRecord, LocalArbEvent, RcEvent, ReadEvent, Sa2Event, Va2Event, VcEvent, WriteEvent,
};
use noc_types::site::SignalKind;
use noc_types::Cycle;
use serde::{Deserialize, Serialize};

/// Number of ports of the canonical router.
pub const P: usize = Direction::COUNT;

/// A flit in flight on a link, tagged with the downstream VC the upstream
/// VA stage assigned (the "VC id" field of the flit's control overhead).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFlit {
    /// The flit.
    pub flit: Flit,
    /// Raw downstream VC index (normally `< vcs_per_port`).
    pub vc: u8,
}

/// A credit returning upstream: "input port `port` of the sender popped a
/// flit out of VC `vc`; `tail` tells whether that flit's kind wire said
/// tail" (which, in atomic mode, releases the upstream allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditMsg {
    /// Port index (meaning depends on hop: see `Network` routing of
    /// credits).
    pub port: u8,
    /// VC index.
    pub vc: u8,
    /// The popped flit was a tail.
    pub tail: bool,
}

/// One router: five input ports × V VCs, five output ports, the arbiters,
/// the SA→ST latches and the link-side registers.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Router {
    id: u16,
    coord: Coord,
    live: [bool; P],
    /// Output directions fenced by the recovery controller; when any bit is
    /// set the RC stage falls back to degraded (detouring) routing.
    avoid: [bool; P],
    /// `inputs[port][vc]`.
    inputs: Vec<Vec<VirtualChannel>>,
    /// `outputs[port]` — downstream allocation + credit bookkeeping.
    pub(crate) outputs: Vec<OutputPort>,
    rc_rr: Vec<RoundRobin>,
    va1: Vec<RoundRobin>,
    sa1: Vec<RoundRobin>,
    va2: Vec<RoundRobin>,
    sa2: Vec<RoundRobin>,
    /// SA results latched for next cycle's ST: per input port, VC read mask.
    st_read: [u64; P],
    /// SA2 grant vectors latched for next cycle's crossbar control.
    st_grant: [u64; P],
    /// Stale "result bus" registers (what a spurious latch-enable captures).
    rc_bus: Vec<u64>,
    va_bus: Vec<u64>,
    va2_bus: Vec<u64>,
    /// Link-input registers: flit arriving this cycle per input port.
    pub(crate) incoming: Vec<Option<LinkFlit>>,
    /// Credits arriving this cycle, addressed to output ports.
    pub(crate) incoming_credits: Vec<CreditMsg>,
    /// Staged link outputs (moved to neighbours by the network).
    pub(crate) out_flits: Vec<Option<LinkFlit>>,
    /// Staged credit returns (port = *input* port where the pop happened).
    pub(crate) out_credits: Vec<CreditMsg>,
    /// Stale link-data registers per input port (spurious writes replay
    /// these).
    last_arrival: Vec<Option<LinkFlit>>,
    /// Per-input-port bitmask of quarantined VCs. A disabled input VC is
    /// skipped by every pipeline stage — its wires are never read, so a
    /// fault armed on them can no longer activate and replay stale state.
    input_disabled: [u64; P],
    /// Fault-region next-hop row for the free (may-still-go-up) phase,
    /// indexed by destination node id: direction bits, or the sentinel 7
    /// (no route → eject locally). Empty while the region map is
    /// disengaged — the RC stage then falls through to the baseline
    /// algorithm, keeping fault-free behaviour bit-identical.
    region_next_up: Vec<u8>,
    /// Fault-region next-hop row once committed downward.
    region_next_down: Vec<u8>,
    /// Per arrival port: `true` when the hop *into* this router over that
    /// port was a down hop (the packet is committed; consult
    /// `region_next_down`).
    region_down_in: [bool; P],
    /// RC decisions where the region tables overrode the baseline route.
    region_reroutes: u64,
}

// Manual impl so `clone_from` (the arena reset path) reuses every nested
// allocation — per-VC buffers, output-port bookkeeping, link registers —
// instead of rebuilding the router from scratch each campaign run.
impl Clone for Router {
    fn clone(&self) -> Router {
        Router {
            id: self.id,
            coord: self.coord,
            live: self.live,
            avoid: self.avoid,
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            rc_rr: self.rc_rr.clone(),
            va1: self.va1.clone(),
            sa1: self.sa1.clone(),
            va2: self.va2.clone(),
            sa2: self.sa2.clone(),
            st_read: self.st_read,
            st_grant: self.st_grant,
            rc_bus: self.rc_bus.clone(),
            va_bus: self.va_bus.clone(),
            va2_bus: self.va2_bus.clone(),
            incoming: self.incoming.clone(),
            incoming_credits: self.incoming_credits.clone(),
            out_flits: self.out_flits.clone(),
            out_credits: self.out_credits.clone(),
            last_arrival: self.last_arrival.clone(),
            input_disabled: self.input_disabled,
            region_next_up: self.region_next_up.clone(),
            region_next_down: self.region_next_down.clone(),
            region_down_in: self.region_down_in,
            region_reroutes: self.region_reroutes,
        }
    }

    fn clone_from(&mut self, src: &Router) {
        self.id = src.id;
        self.coord = src.coord;
        self.live = src.live;
        self.avoid = src.avoid;
        self.inputs.clone_from(&src.inputs);
        self.outputs.clone_from(&src.outputs);
        self.rc_rr.clone_from(&src.rc_rr);
        self.va1.clone_from(&src.va1);
        self.sa1.clone_from(&src.sa1);
        self.va2.clone_from(&src.va2);
        self.sa2.clone_from(&src.sa2);
        self.st_read = src.st_read;
        self.st_grant = src.st_grant;
        self.rc_bus.clone_from(&src.rc_bus);
        self.va_bus.clone_from(&src.va_bus);
        self.va2_bus.clone_from(&src.va2_bus);
        self.incoming.clone_from(&src.incoming);
        self.incoming_credits.clone_from(&src.incoming_credits);
        self.out_flits.clone_from(&src.out_flits);
        self.out_credits.clone_from(&src.out_credits);
        self.last_arrival.clone_from(&src.last_arrival);
        self.input_disabled = src.input_disabled;
        self.region_next_up.clone_from(&src.region_next_up);
        self.region_next_down.clone_from(&src.region_next_down);
        self.region_down_in = src.region_down_in;
        self.region_reroutes = src.region_reroutes;
    }
}

/// Per-cycle scratch shared across stages; lives in the network and is
/// reused for every router to avoid allocation in the hot loop.
#[derive(Debug, Default, Clone)]
pub struct RouterScratch {
    ev_rc: [[bool; 16]; P],
    ev_va: [[bool; 16]; P],
    ev_sa: [[bool; 16]; P],
    rc_result: [[Option<u64>; 16]; P],
    va_result: [[Option<u64>; 16]; P],
    state_snap: [[u64; 16]; P],
    row_flit: [Option<(Flit, u8)>; P],
    /// Deferred wormhole teardowns queued by the ST stage (reused so the
    /// hot loop never allocates).
    tail_release: Vec<(u8, u8)>,
}

impl RouterScratch {
    /// Clears only the `0..vcs` rows each stage may have written: entries
    /// at or beyond `vcs` are never touched by any stage, so a partial
    /// clear leaves the arrays exactly as a full default would.
    fn reset(&mut self, vcs: u8) {
        let v = vcs as usize;
        for p in 0..P {
            self.ev_rc[p][..v].fill(false);
            self.ev_va[p][..v].fill(false);
            self.ev_sa[p][..v].fill(false);
            self.rc_result[p][..v].fill(None);
            self.va_result[p][..v].fill(None);
            self.state_snap[p][..v].fill(0);
        }
        self.row_flit = [None; P];
        self.tail_release.clear();
    }
}

impl Router {
    /// Creates the router for node `id` at `coord` with liveness derived
    /// from the mesh position.
    pub fn new(cfg: &NocConfig, id: u16) -> Router {
        let node = noc_types::geometry::NodeId(id);
        let coord = cfg.mesh.coord(node);
        let mut live = [false; P];
        for d in Direction::ALL {
            live[d.index()] = cfg.mesh.port_live(node, d);
        }
        let v = cfg.vcs_per_port;
        Router {
            id,
            coord,
            live,
            avoid: [false; P],
            inputs: (0..P)
                .map(|_| {
                    (0..v)
                        .map(|_| VirtualChannel::new(cfg.buffer_depth))
                        .collect()
                })
                .collect(),
            outputs: (0..P)
                .map(|p| OutputPort::new(live[p], v, cfg.buffer_depth))
                .collect(),
            rc_rr: (0..P).map(|_| RoundRobin::new(v)).collect(),
            va1: (0..P).map(|_| RoundRobin::new(v)).collect(),
            sa1: (0..P).map(|_| RoundRobin::new(v)).collect(),
            va2: (0..P).map(|_| RoundRobin::new(P as u8)).collect(),
            sa2: (0..P).map(|_| RoundRobin::new(P as u8)).collect(),
            st_read: [0; P],
            st_grant: [0; P],
            rc_bus: vec![0; P],
            va_bus: vec![0; P],
            va2_bus: vec![0; P],
            incoming: vec![None; P],
            incoming_credits: Vec::new(),
            out_flits: vec![None; P],
            out_credits: Vec::new(),
            last_arrival: vec![None; P],
            input_disabled: [0; P],
            region_next_up: Vec::new(),
            region_next_down: Vec::new(),
            region_down_in: [false; P],
            region_reroutes: 0,
        }
    }

    /// Router (node) id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Mesh coordinate.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Port liveness mask.
    pub fn live(&self) -> &[bool; P] {
        &self.live
    }

    /// Immutable view of an input VC (diagnostics and tests).
    pub fn input_vc(&self, port: u8, vc: u8) -> &VirtualChannel {
        &self.inputs[port as usize][vc as usize]
    }

    /// Immutable view of an output port (diagnostics and tests).
    pub fn output_port(&self, port: u8) -> &OutputPort {
        &self.outputs[port as usize]
    }

    /// Total flits buffered in this router (input buffers only).
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|port| port.iter())
            .map(|vc| vc.buffer.len())
            .sum()
    }

    /// True when no flit is buffered, latched or staged anywhere.
    pub fn is_empty(&self) -> bool {
        self.buffered_flits() == 0
            && self.incoming.iter().all(Option::is_none)
            && self.out_flits.iter().all(Option::is_none)
            && self.st_read.iter().all(|&m| m == 0)
    }

    /// True when this cycle's control step is provably a no-op: no credit
    /// or flit pending on any link, no latched switch read/grant, and
    /// every input VC idle with an empty buffer. Arbiters do not rotate on
    /// zero requests and the state table only writes on events, so the
    /// network may skip [`Router::step`] entirely for such a router (as
    /// long as no fault is armed on it) and the outcome — state *and*
    /// emitted record — is bit-identical.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.incoming_credits.is_empty()
            && self.st_read.iter().all(|&m| m == 0)
            && self.st_grant.iter().all(|&m| m == 0)
            && self.incoming.iter().all(Option::is_none)
            && self.out_flits.iter().all(Option::is_none)
            && self
                .inputs
                .iter()
                .flat_map(|port| port.iter())
                .all(|vc| vc.state == state::IDLE && vc.buffer.is_empty())
    }

    /// The uid of the flit at the head of input VC `(port, vc)`, or `None`
    /// when the buffer is empty (or the address is out of range). The
    /// recovery layer's worm-age monitor samples this each cycle: an
    /// unchanged head uid means the worm has made no forward progress.
    pub(crate) fn input_head_uid(&self, port: u8, vc: u8) -> Option<u64> {
        let (p, v) = (port as usize, vc as usize);
        self.inputs
            .get(p)
            .and_then(|vcs| vcs.get(v))
            .and_then(|slot| slot.buffer.peek())
            .map(|f| f.uid)
    }

    // --- Recovery-controller containment primitives (DESIGN.md §11) ---

    /// L1 squash: destroys the suspect flit at the head of input VC
    /// `(port, vc)` and stages the upstream credit its read would have
    /// produced, so flow control stays consistent. Returns flits dropped
    /// (0 or 1).
    pub(crate) fn squash_input_vc(&mut self, port: u8, vc: u8) -> usize {
        let (p, v) = (port as usize, vc as usize);
        if p >= P || !self.live[p] || v >= self.inputs[p].len() {
            return 0;
        }
        let Some(flit) = self.inputs[p][v].buffer.pop() else {
            return 0;
        };
        self.out_credits.push(CreditMsg {
            port,
            vc,
            tail: flit.is_tail(),
        });
        if flit.is_tail() {
            // The worm ended with the squashed flit: tear the VC down as a
            // normal tail read would.
            let vcref = &mut self.inputs[p][v];
            vcref.release();
            if let Some(next) = vcref.buffer.peek() {
                if next.is_head() {
                    vcref.state = state::ROUTING;
                }
            }
        }
        1
    }

    /// L2 teardown, input side: destroys every flit buffered in input VC
    /// `(port, vc)`, cancels its pending switch read and clears an
    /// in-flight link arrival addressed to it. Returns flits dropped.
    pub(crate) fn hard_reset_input_vc(&mut self, port: u8, vc: u8) -> usize {
        let (p, v) = (port as usize, vc as usize);
        if p >= P || v >= self.inputs[p].len() {
            return 0;
        }
        self.st_read[p] &= !(1 << v);
        let mut dropped = self.inputs[p][v].hard_reset();
        if self.incoming[p].is_some_and(|lf| lf.vc == vc) {
            self.incoming[p] = None;
            dropped += 1;
        }
        dropped
    }

    /// L2 teardown, link side: destroys a staged outbound flit headed for
    /// downstream VC `vc` of output `port`. Returns flits dropped.
    pub(crate) fn clear_out_flit_to(&mut self, port: u8, vc: u8) -> usize {
        let p = port as usize;
        if p < P && self.out_flits[p].is_some_and(|lf| lf.vc == vc) {
            self.out_flits[p] = None;
            1
        } else {
            0
        }
    }

    /// The local input `(port, vc)` currently holding the allocation of
    /// downstream VC `vc` at output `port` (for worm-chain teardown).
    pub(crate) fn output_owner(&self, port: u8, vc: u8) -> Option<(u8, u8)> {
        self.outputs
            .get(port as usize)?
            .owner
            .get(vc as usize)
            .copied()
            .flatten()
    }

    /// L2 teardown, output side: restores output VC bookkeeping to reset
    /// values (full credits, free unless quarantined).
    pub(crate) fn reset_output_vc(&mut self, port: u8, vc: u8, depth: u8) {
        if let Some(op) = self.outputs.get_mut(port as usize) {
            op.reset_vc(vc, depth);
        }
    }

    /// L3 quarantine of downstream VC `vc` at output `port`.
    pub(crate) fn disable_output_vc(&mut self, port: u8, vc: u8) {
        if let Some(op) = self.outputs.get_mut(port as usize) {
            op.disable(vc);
        }
    }

    /// L3 quarantine of *input* VC `(port, vc)`: every pipeline stage skips
    /// the VC from now on. Disabling the upstream output VC alone is not
    /// enough — the read side here would keep sampling the (possibly still
    /// faulty) buffer-status wires of the drained VC, and an intermittent
    /// `BufEmpty` flip on an empty quarantined buffer replays stale flits
    /// as zombie worms. Callers drain the VC first (`hard_reset_input_vc`).
    pub(crate) fn disable_input_vc(&mut self, port: u8, vc: u8) {
        let (p, v) = (port as usize, vc as usize);
        if p < P && v < self.inputs[p].len() {
            self.input_disabled[p] |= 1 << v;
        }
    }

    /// True when input VC `(port, vc)` has been quarantined.
    #[inline]
    pub(crate) fn input_vc_disabled(&self, port: u8, vc: u8) -> bool {
        (self.input_disabled[port as usize] >> vc) & 1 == 1
    }

    /// True when every downstream VC of output `port` is quarantined.
    /// True when every VC of output `port` in the half-open range
    /// `lo..hi` is disabled — a message class starved of paths through
    /// this direction (the fence trigger for degraded routing).
    pub(crate) fn output_class_starved(&self, port: u8, lo: u8, hi: u8) -> bool {
        self.outputs.get(port as usize).is_some_and(|op| {
            op.disabled
                .get(lo as usize..(hi as usize).min(op.disabled.len()))
                .is_some_and(|cls| !cls.is_empty() && cls.iter().all(|&d| d))
        })
    }

    /// Fences (or unfences) output direction `port` for degraded routing.
    pub(crate) fn set_avoid(&mut self, port: u8, fenced: bool) {
        if (port as usize) < P {
            self.avoid[port as usize] = fenced;
        }
    }

    /// Installs (or clears, with empty slices) the fault-region
    /// next-hop rows and arrival-phase flags for this router. The network
    /// pushes fresh rows after every region-map rebuild; buffers are
    /// reused so resyncs never allocate once sized.
    pub(crate) fn install_region_rows(&mut self, up: &[u8], down: &[u8], down_in: [bool; P]) {
        self.region_next_up.clear();
        self.region_next_up.extend_from_slice(up);
        self.region_next_down.clear();
        self.region_next_down.extend_from_slice(down);
        self.region_down_in = down_in;
    }

    /// RC decisions where the fault-region tables overrode the baseline
    /// route (cumulative).
    pub fn region_reroutes(&self) -> u64 {
        self.region_reroutes
    }

    /// Bitmask of output directions currently fenced for degraded routing.
    pub fn avoid_mask(&self) -> u64 {
        self.avoid
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .fold(0, |m, (i, _)| m | 1 << i)
    }

    /// Applies a single-event upset directly to a stored state-table bit
    /// (see `SignalKind::is_register`). Returns whether a register was
    /// actually flipped.
    pub(crate) fn apply_register_upset(&mut self, site: &noc_types::site::SiteRef) -> bool {
        let p = site.port as usize;
        let v = site.vc as usize;
        if p >= P || !self.live[p] || v >= self.inputs[p].len() {
            return false;
        }
        let vc = &mut self.inputs[p][v];
        match site.signal {
            SignalKind::VcStateCode => {
                vc.state = (vc.state ^ (1 << site.bit)) & 0b11;
                true
            }
            SignalKind::VcOutPort => {
                vc.out_port = (vc.out_port ^ (1 << site.bit)) & 0b111;
                true
            }
            SignalKind::VcOutVc => {
                vc.out_vc ^= 1 << site.bit;
                true
            }
            _ => false,
        }
    }

    #[inline]
    fn state_wire(&self, pl: &mut FaultPlane, cy: Cycle, p: u8, v: u8) -> u64 {
        pl.xf(
            cy,
            self.id,
            p,
            v,
            SignalKind::VcStateCode,
            self.inputs[p as usize][v as usize].state,
        ) & 0b11
    }

    /// One full cycle of the router's control logic. `rec` must already be
    /// reset to this router.
    pub fn step(
        &mut self,
        cfg: &NocConfig,
        cy: Cycle,
        pl: &mut FaultPlane,
        scratch: &mut RouterScratch,
        rec: &mut CycleRecord,
    ) {
        let vcs = cfg.vcs_per_port;
        scratch.reset(vcs);

        self.apply_credits(cfg, cy);
        self.stage_st(cfg, cy, pl, scratch, rec);
        // Snapshot the state wires between ST and SA: this is the
        // "state_before" the pipeline-order checkers reason about.
        for p in 0..P as u8 {
            if !self.live[p as usize] {
                continue;
            }
            for v in 0..vcs {
                scratch.state_snap[p as usize][v as usize] = self.state_wire(pl, cy, p, v);
            }
        }
        self.stage_sa(cfg, cy, pl, scratch, rec);
        self.stage_va(cfg, cy, pl, scratch, rec);
        self.stage_rc(cfg, cy, pl, scratch, rec);
        self.stage_bw(cfg, cy, pl, rec);
        self.state_table_update(cfg, cy, pl, scratch, rec);
    }

    /// Applies credits that arrived on the reverse links. Drained in place
    /// (disjoint-field borrow) so the queue keeps its capacity.
    fn apply_credits(&mut self, cfg: &NocConfig, _cy: Cycle) {
        let atomic = cfg.buffer_policy == BufferPolicy::Atomic;
        let Router {
            incoming_credits,
            outputs,
            ..
        } = self;
        for c in incoming_credits.drain(..) {
            let op = &mut outputs[c.port as usize];
            op.return_credit(c.vc as u64, cfg.buffer_depth);
            if c.tail && atomic {
                op.release(c.vc as u64);
            }
        }
    }

    /// ST stage: execute last cycle's SA decisions — buffer reads, port
    /// muxes, crossbar traversal, link launch, credit returns.
    fn stage_st(
        &mut self,
        cfg: &NocConfig,
        cy: Cycle,
        pl: &mut FaultPlane,
        scratch: &mut RouterScratch,
        rec: &mut CycleRecord,
    ) {
        let vcs = cfg.vcs_per_port;
        let non_atomic = cfg.buffer_policy == BufferPolicy::NonAtomic;
        let read_latch = std::mem::replace(&mut self.st_read, [0; P]);
        let grant_latch = std::mem::replace(&mut self.st_grant, [0; P]);

        // Per-port buffer reads + port mux. Tail-triggered wormhole
        // teardown is deferred until after crossbar traversal: the VC state
        // table's outputs (out_port / out_vc) are still driving the switch
        // during this cycle.
        for p in 0..P as u8 {
            if !self.live[p as usize] {
                continue;
            }
            let mut mux: Option<(Flit, u8)> = None;
            for v in 0..vcs {
                if self.input_vc_disabled(p, v) {
                    continue;
                }
                let mut enabled = (read_latch[p as usize] >> v) & 1 == 1;
                if enabled && cfg.speculative {
                    // Speculative switch allocation: the bid was made while
                    // VC allocation was (possibly) still pending. Squash
                    // the traversal unless allocation succeeded and a
                    // credit is available for the allocated VC.
                    let st = self.state_wire(pl, cy, p, v);
                    if st != state::ACTIVE {
                        enabled = false;
                    } else {
                        let op = pl.xf(
                            cy,
                            self.id,
                            p,
                            v,
                            SignalKind::VcOutPort,
                            self.inputs[p as usize][v as usize].out_port,
                        ) & 0b111;
                        let ovc = pl.xf(
                            cy,
                            self.id,
                            p,
                            v,
                            SignalKind::VcOutVc,
                            self.inputs[p as usize][v as usize].out_vc,
                        );
                        if (op as usize) >= P
                            || !self.live[op as usize]
                            || !self.outputs[op as usize].has_credit(ovc)
                        {
                            enabled = false;
                        }
                    }
                }
                let rd = pl.xf_bool(cy, self.id, p, v, SignalKind::BufRead, enabled);
                if !rd {
                    continue;
                }
                let vcref = &mut self.inputs[p as usize][v as usize];
                let was_empty = vcref.buffer.is_empty();
                rec.reads.push(ReadEvent {
                    port: p,
                    vc: v,
                    was_empty,
                });
                let flit = match vcref.buffer.pop() {
                    Some(f) => f,
                    None => vcref.buffer.read_stale(),
                };
                // Credit pulse travels upstream per read-enable, with the
                // tail wire decoded from the read data.
                self.out_credits.push(CreditMsg {
                    port: p,
                    vc: v,
                    tail: flit.is_tail(),
                });
                if flit.is_tail() {
                    scratch.tail_release.push((p, v));
                }
                // Port output mux: the lowest-indexed read wins; any other
                // concurrently popped flit is physically lost at the mux
                // (invariance 29 is the checker for this).
                if mux.is_none() {
                    mux = Some((flit, v));
                }
            }
            scratch.row_flit[p as usize] = mux;
        }

        // Crossbar control + traversal.
        let mut matrix = 0u64;
        let mut out_valid = 0u64;
        let mut out_count = 0u8;
        for o in 0..P as u8 {
            if !self.live[o as usize] {
                continue;
            }
            let gr_in = pl.xf(
                cy,
                self.id,
                o,
                0,
                SignalKind::XbarGrantIn,
                grant_latch[o as usize],
            );
            let col = pl.xf(cy, self.id, o, 0, SignalKind::XbarCol, gr_in) & 0b11111;
            for p in 0..P as u8 {
                if (col >> p) & 1 == 1 {
                    matrix |= 1 << (o * 8 + p);
                }
            }
            // Gather the valid rows this column connects to.
            let mut first: Option<u8> = None;
            let mut extra = false;
            for p in 0..P as u8 {
                if (col >> p) & 1 == 1 && scratch.row_flit[p as usize].is_some() {
                    if first.is_none() {
                        first = Some(p);
                    } else {
                        extra = true;
                    }
                }
            }
            let Some(src_p) = first else { continue };
            let (mut flit, src_v) = scratch.row_flit[src_p as usize]
                .expect("src_p was selected only among rows holding a flit");
            if extra {
                // Two drivers on one column: the payloads collide. EDC on
                // the datapath would flag the damage, but the control-level
                // outcome is a corrupted flit continuing downstream.
                flit.corrupted = true;
            }
            let ovc = pl.xf(
                cy,
                self.id,
                src_p,
                src_v,
                SignalKind::VcOutVc,
                self.inputs[src_p as usize][src_v as usize].out_vc,
            );
            self.outputs[o as usize].consume_credit(ovc);
            if flit.is_tail() && non_atomic {
                self.outputs[o as usize].release(ovc);
            }
            self.out_flits[o as usize] = Some(LinkFlit {
                flit,
                vc: ovc as u8,
            });
            out_valid |= 1 << o;
            out_count += 1;
        }

        // Deferred wormhole teardown at the input side.
        for &(p, v) in &scratch.tail_release {
            let vcref = &mut self.inputs[p as usize][v as usize];
            vcref.release();
            if let Some(next) = vcref.buffer.peek() {
                if next.is_head() {
                    vcref.state = state::ROUTING;
                }
            }
        }

        let mut in_valid = 0u64;
        for p in 0..P as u8 {
            if scratch.row_flit[p as usize].is_some() {
                in_valid |= 1 << p;
            }
        }
        rec.xbar.matrix = matrix;
        rec.xbar.in_valid = in_valid;
        rec.xbar.out_valid = out_valid;
        rec.xbar.in_count = in_valid.count_ones() as u8;
        rec.xbar.out_count = out_count;
    }

    /// SA stage: SA1 per input port (credits are checked here, per the
    /// paper), SA2 per output port; winners are latched for next cycle's ST.
    fn stage_sa(
        &mut self,
        cfg: &NocConfig,
        cy: Cycle,
        pl: &mut FaultPlane,
        scratch: &mut RouterScratch,
        rec: &mut CycleRecord,
    ) {
        let vcs = cfg.vcs_per_port;
        let mut sa1_winner: [Option<u8>; P] = [None; P];
        let mut sa2_req = [0u64; P];
        let mut sa2_cand: [[Option<u8>; P]; P] = [[None; P]; P];
        let mut vc_target: [[Option<(u64, u64)>; 16]; P] = [[None; 16]; P];

        for p in 0..P as u8 {
            if !self.live[p as usize] {
                continue;
            }
            let mut req = 0u64;
            let mut credit_mask = 0u64;
            let mut any_interest = false;
            for v in 0..vcs {
                if self.input_vc_disabled(p, v) {
                    continue;
                }
                let st = self.state_wire(pl, cy, p, v);
                let empty = pl.xf_bool(
                    cy,
                    self.id,
                    p,
                    v,
                    SignalKind::BufEmpty,
                    self.inputs[p as usize][v as usize].buffer.is_empty(),
                );
                let speculating = cfg.speculative && st == state::VA_PENDING;
                if (st != state::ACTIVE && !speculating) || empty {
                    continue;
                }
                any_interest = true;
                let op = pl.xf(
                    cy,
                    self.id,
                    p,
                    v,
                    SignalKind::VcOutPort,
                    self.inputs[p as usize][v as usize].out_port,
                ) & 0b111;
                let ovc = pl.xf(
                    cy,
                    self.id,
                    p,
                    v,
                    SignalKind::VcOutVc,
                    self.inputs[p as usize][v as usize].out_vc,
                );
                vc_target[p as usize][v as usize] = Some((op, ovc));
                let credit = if speculating {
                    // Speculative bids cannot know the output VC yet; the
                    // credit gate moves to switch traversal (the squash).
                    true
                } else {
                    (op as usize) < P
                        && self.live[op as usize]
                        && self.outputs[op as usize].has_credit(ovc)
                };
                if credit {
                    credit_mask |= 1 << v;
                    req |= 1 << v;
                }
            }
            let req_w = pl.xf(cy, self.id, p, 0, SignalKind::Sa1Req, req);
            let g_int = self.sa1[p as usize].arbitrate(req_w);
            let g = pl.xf(cy, self.id, p, 0, SignalKind::Sa1Grant, g_int);
            if req_w != 0 || g != 0 || any_interest {
                rec.sa1.push(LocalArbEvent {
                    port: p,
                    req: req_w,
                    grant: g,
                    credit_ok: credit_mask,
                });
            }
            // The port's winner path latches the lowest granted VC.
            if g != 0 {
                let v = g.trailing_zeros() as u8;
                if v < vcs {
                    sa1_winner[p as usize] = Some(v);
                    let (op, _) = match vc_target[p as usize][v as usize] {
                        Some(t) => t,
                        None => {
                            // A granted VC that never qualified: the port
                            // control reads its (stale) target wires now.
                            let op = pl.xf(
                                cy,
                                self.id,
                                p,
                                v,
                                SignalKind::VcOutPort,
                                self.inputs[p as usize][v as usize].out_port,
                            ) & 0b111;
                            let ovc = pl.xf(
                                cy,
                                self.id,
                                p,
                                v,
                                SignalKind::VcOutVc,
                                self.inputs[p as usize][v as usize].out_vc,
                            );
                            vc_target[p as usize][v as usize] = Some((op, ovc));
                            (op, ovc)
                        }
                    };
                    if (op as usize) < P && self.live[op as usize] {
                        sa2_req[op as usize] |= 1 << p;
                        sa2_cand[op as usize][p as usize] = Some(v);
                    }
                }
            }
        }

        for o in 0..P as u8 {
            if !self.live[o as usize] {
                continue;
            }
            let req_w = pl.xf(cy, self.id, o, 0, SignalKind::Sa2Req, sa2_req[o as usize]);
            let g_int = self.sa2[o as usize].arbitrate(req_w);
            let g = pl.xf(cy, self.id, o, 0, SignalKind::Sa2Grant, g_int);
            self.st_grant[o as usize] = g;
            let mut winner: Option<(u8, u8)> = None;
            let mut winner_rc_port = None;
            let mut winner_won_sa1 = false;
            let mut winner_credit_ok = false;
            for p in 0..P as u8 {
                if (g >> p) & 1 == 0 {
                    continue;
                }
                if let Some(v) = sa1_winner[p as usize] {
                    self.st_read[p as usize] |= 1 << v;
                    scratch.ev_sa[p as usize][v as usize] = true;
                    if winner.is_none() {
                        winner = Some((p, v));
                        let (op, ovc) = vc_target[p as usize][v as usize].unwrap_or((0, 0));
                        winner_rc_port = Some(op);
                        winner_won_sa1 = sa2_cand[o as usize][p as usize] == Some(v);
                        // A speculative bid has no allocated VC yet: its
                        // credit gate moves to switch traversal, so the
                        // wire checkers treat it as satisfied (the paper's
                        // Section-4.4 invariance adaptation).
                        let speculating =
                            cfg.speculative && self.state_wire(pl, cy, p, v) == state::VA_PENDING;
                        winner_credit_ok = speculating
                            || ((op as usize) < P
                                && self.live[op as usize]
                                && self.outputs[op as usize].has_credit(ovc));
                    }
                }
            }
            if req_w != 0 || g != 0 {
                rec.sa2.push(Sa2Event {
                    out_port: o,
                    req: req_w,
                    grant: g,
                    winner,
                    winner_rc_port,
                    winner_won_sa1,
                    winner_credit_ok,
                });
            }
        }
    }

    /// VA stage: VA1 per input port, VA2 per output port; winners get a
    /// downstream VC.
    fn stage_va(
        &mut self,
        cfg: &NocConfig,
        cy: Cycle,
        pl: &mut FaultPlane,
        scratch: &mut RouterScratch,
        rec: &mut CycleRecord,
    ) {
        let vcs = cfg.vcs_per_port;
        let mut va1_winner: [Option<u8>; P] = [None; P];
        let mut va2_req = [0u64; P];
        let mut va2_cand: [[Option<u8>; P]; P] = [[None; P]; P];

        for p in 0..P as u8 {
            if !self.live[p as usize] {
                continue;
            }
            let mut req = 0u64;
            for v in 0..vcs {
                if self.input_vc_disabled(p, v) {
                    continue;
                }
                if self.state_wire(pl, cy, p, v) == state::VA_PENDING {
                    req |= 1 << v;
                }
            }
            let req_w = pl.xf(cy, self.id, p, 0, SignalKind::Va1Req, req);
            let g_int = self.va1[p as usize].arbitrate(req_w);
            let g = pl.xf(cy, self.id, p, 0, SignalKind::Va1Grant, g_int);
            if req_w != 0 || g != 0 {
                rec.va1.push(LocalArbEvent {
                    port: p,
                    req: req_w,
                    grant: g,
                    credit_ok: req_w,
                });
            }
            if g != 0 {
                let v = g.trailing_zeros() as u8;
                if v < vcs {
                    va1_winner[p as usize] = Some(v);
                    let op = pl.xf(
                        cy,
                        self.id,
                        p,
                        v,
                        SignalKind::VcOutPort,
                        self.inputs[p as usize][v as usize].out_port,
                    ) & 0b111;
                    if (op as usize) < P && self.live[op as usize] {
                        va2_req[op as usize] |= 1 << p;
                        va2_cand[op as usize][p as usize] = Some(v);
                    }
                }
            }
        }

        for o in 0..P as u8 {
            if !self.live[o as usize] {
                continue;
            }
            // Only requests whose message class has a free downstream VC
            // are eligible.
            let mut elig = 0u64;
            for p in 0..P as u8 {
                if (va2_req[o as usize] >> p) & 1 == 0 {
                    continue;
                }
                let v = va2_cand[o as usize][p as usize].expect("request implies candidate");
                let class = cfg.class_of_vc(v);
                let (lo, hi) = cfg.vc_range_of_class(class);
                if self.outputs[o as usize].lowest_free_in(lo, hi).is_some() {
                    elig |= 1 << p;
                }
            }
            let req_w = pl.xf(cy, self.id, o, 0, SignalKind::Va2Req, elig);
            let g_int = self.va2[o as usize].arbitrate(req_w);
            let g = pl.xf(cy, self.id, o, 0, SignalKind::Va2Grant, g_int);
            if req_w == 0 && g == 0 {
                continue;
            }
            // The VC-select bus: computed for the internal winner; a
            // spurious grant latches whatever the bus last carried.
            let chosen = g_int
                .checked_trailing_zeros_lt(P as u32)
                .and_then(|p_int| va2_cand[o as usize][p_int as usize])
                .map(|v| {
                    let class = cfg.class_of_vc(v);
                    let (lo, hi) = cfg.vc_range_of_class(class);
                    self.outputs[o as usize].lowest_free_in(lo, hi).unwrap_or(0) as u64
                })
                .unwrap_or(self.va2_bus[o as usize]);
            self.va2_bus[o as usize] = chosen;
            let out_vc_w = pl.xf(cy, self.id, o, 0, SignalKind::Va2OutVc, chosen);
            let free_mask = self.outputs[o as usize].free_mask();

            let mut winner = None;
            let mut winner_rc_port = None;
            let mut winner_class = None;
            let mut winner_won_va1 = false;
            for p in 0..P as u8 {
                if (g >> p) & 1 == 0 {
                    continue;
                }
                if let Some(v) = va1_winner[p as usize] {
                    scratch.va_result[p as usize][v as usize] = Some(out_vc_w);
                    scratch.ev_va[p as usize][v as usize] = true;
                    self.va_bus[p as usize] = out_vc_w;
                    self.outputs[o as usize].allocate(out_vc_w, (p, v));
                    if winner.is_none() {
                        winner = Some((p, v));
                        winner_rc_port = Some(
                            pl.xf(
                                cy,
                                self.id,
                                p,
                                v,
                                SignalKind::VcOutPort,
                                self.inputs[p as usize][v as usize].out_port,
                            ) & 0b111,
                        );
                        winner_class = Some(cfg.class_of_vc(v));
                        winner_won_va1 = va2_cand[o as usize][p as usize] == Some(v);
                    }
                }
            }
            rec.va2.push(Va2Event {
                out_port: o,
                req: req_w,
                grant: g,
                out_vc: out_vc_w,
                free_mask,
                winner,
                winner_rc_port,
                winner_class,
                winner_won_va1,
            });
        }
    }

    /// RC stage: one routing computation per input port per cycle.
    fn stage_rc(
        &mut self,
        cfg: &NocConfig,
        cy: Cycle,
        pl: &mut FaultPlane,
        scratch: &mut RouterScratch,
        rec: &mut CycleRecord,
    ) {
        let vcs = cfg.vcs_per_port;
        for p in 0..P as u8 {
            if !self.live[p as usize] {
                continue;
            }
            let mut pending = 0u64;
            for v in 0..vcs {
                if self.input_vc_disabled(p, v) {
                    continue;
                }
                if self.state_wire(pl, cy, p, v) == state::ROUTING {
                    pending |= 1 << v;
                }
            }
            if pending == 0 {
                continue;
            }
            let pick = self.rc_rr[p as usize].arbitrate(pending);
            let v = pick.trailing_zeros() as u8;
            let vcref = &self.inputs[p as usize][v as usize];
            let head = vcref.buffer.peek().copied();
            let wire_flit = head.unwrap_or_else(|| vcref.buffer.read_stale());
            let dest = cfg.mesh.coord(noc_types::geometry::NodeId(
                wire_flit.dest.0 % cfg.mesh.len() as u16,
            ));
            let dx = pl.xf(cy, self.id, p, v, SignalKind::RcDestX, dest.x as u64);
            let dy = pl.xf(cy, self.id, p, v, SignalKind::RcDestY, dest.y as u64);
            let head_valid = pl.xf_bool(
                cy,
                self.id,
                p,
                v,
                SignalKind::RcHeadValid,
                head.map(|f| f.is_head()).unwrap_or(false),
            );
            let dest_c = Coord::new(
                (dx as u8).min(cfg.mesh.width().saturating_sub(1).max(dx as u8)),
                (dy as u8).min(cfg.mesh.height().saturating_sub(1).max(dy as u8)),
            );
            let region_bits = if self.region_next_up.is_empty() {
                noc_types::record::REGION_NONE
            } else {
                // Fault-region tables installed: phase is derived from the
                // arrival port (a down-hop arrival commits the packet),
                // with injections always free. The destination index is
                // clamp-guarded — a fault-corrupted dest wire decodes to
                // the no-route sentinel, never out of bounds.
                let di = dest_c.y as usize * cfg.mesh.width() as usize + dest_c.x as usize;
                let committed =
                    p != Direction::Local.index() as u8 && self.region_down_in[p as usize];
                let row = if committed {
                    &self.region_next_down
                } else {
                    &self.region_next_up
                };
                row.get(di)
                    .copied()
                    .unwrap_or(crate::fault_region::NO_ROUTE)
            };
            let region_dir = if region_bits == noc_types::record::REGION_NONE {
                None
            } else {
                // The sentinel decodes to None → eject locally: the flit
                // is unroutable (destination absorbed or partitioned off)
                // and black-holing it at the ingress hands the loss to the
                // ARQ transport instead of wedging a region boundary.
                Some(Direction::from_bits(region_bits as u64).unwrap_or(Direction::Local))
            };
            let dir = if let Some(d) = region_dir {
                if d != route(cfg.routing, self.coord, dest_c) {
                    self.region_reroutes += 1;
                }
                d
            } else if self.avoid.iter().any(|&a| a) {
                crate::routing::route_avoiding(
                    cfg.routing,
                    cfg.mesh,
                    self.coord,
                    dest_c,
                    &self.avoid,
                )
            } else {
                route(cfg.routing, self.coord, dest_c)
            };
            let out_raw = pl.xf(cy, self.id, p, v, SignalKind::RcOutDir, dir.bits()) & 0b111;
            scratch.rc_result[p as usize][v as usize] = Some(out_raw);
            scratch.ev_rc[p as usize][v as usize] = true;
            self.rc_bus[p as usize] = out_raw;
            let empty_w = pl.xf_bool(
                cy,
                self.id,
                p,
                v,
                SignalKind::BufEmpty,
                vcref.buffer.is_empty(),
            );
            // The degraded-routing registers the checkers re-derive the
            // active routing function from (DESIGN.md §13): the fence mask
            // and the region-table entry RC consulted this cycle.
            let mut avoid_mask = 0u8;
            for (i, &a) in self.avoid.iter().enumerate() {
                if a {
                    avoid_mask |= 1 << i;
                }
            }
            rec.rc.push(RcEvent {
                port: p,
                vc: v,
                dest_x: dx,
                dest_y: dy,
                head_valid,
                buf_empty: empty_w,
                out_dir: out_raw,
                avoid_mask,
                region_next: region_bits,
            });
        }
    }

    /// BW stage: write arriving link flits into the addressed VC buffers.
    fn stage_bw(&mut self, cfg: &NocConfig, cy: Cycle, pl: &mut FaultPlane, rec: &mut CycleRecord) {
        let vcs = cfg.vcs_per_port;
        for p in 0..P as u8 {
            if !self.live[p as usize] {
                continue;
            }
            let arrival = self.incoming[p as usize].take();
            if let Some(lf) = arrival {
                self.last_arrival[p as usize] = Some(lf);
            }
            for v in 0..vcs {
                if self.input_vc_disabled(p, v) {
                    continue;
                }
                let addressed = arrival.map(|lf| lf.vc == v).unwrap_or(false);
                let wr = pl.xf_bool(cy, self.id, p, v, SignalKind::BufWrite, addressed);
                if !wr {
                    continue;
                }
                let flit = if addressed {
                    arrival
                        .expect("addressed implies a link arrival this cycle")
                        .flit
                } else {
                    // Spurious write-enable: the buffer captures whatever
                    // the link data register holds — a stale replay.
                    match self.last_arrival[p as usize] {
                        Some(lf) => {
                            let mut f = lf.flit;
                            f.origin = FlitOrigin::StaleReplay;
                            f
                        }
                        None => {
                            let mut f = crate::buffer::VcBuffer::new(cfg.buffer_depth).read_stale();
                            f.origin = FlitOrigin::StaleReplay;
                            f
                        }
                    }
                };
                let was_free = self.state_wire(pl, cy, p, v) == state::IDLE;
                let vcref = &mut self.inputs[p as usize][v as usize];
                let was_full = pl.xf_bool(
                    cy,
                    self.id,
                    p,
                    v,
                    SignalKind::BufFull,
                    vcref.buffer.is_full(),
                );
                if flit.is_head() {
                    vcref.arrived = 1;
                } else {
                    vcref.arrived = vcref.arrived.saturating_add(1);
                }
                rec.writes.push(WriteEvent {
                    port: p,
                    vc: v,
                    kind: flit.kind.bits(),
                    is_head: flit.is_head(),
                    is_tail: flit.is_tail(),
                    vc_was_free: was_free,
                    buf_was_full: was_full,
                    prev_written_was_tail: vcref.prev_written_was_tail,
                    arrived_count: vcref.arrived,
                    expected_len: cfg.packet_len(cfg.class_of_vc(v)),
                });
                vcref.prev_written_was_tail = flit.is_tail();
                let _lost = vcref.buffer.push(flit);
                if flit.is_head() && was_free {
                    vcref.state = state::ROUTING;
                }
            }
        }
    }

    /// End-of-cycle state-table update: latch RC/VA results through the
    /// (possibly faulty) event wires and emit the VC snapshots checkers use.
    fn state_table_update(
        &mut self,
        cfg: &NocConfig,
        cy: Cycle,
        pl: &mut FaultPlane,
        scratch: &mut RouterScratch,
        rec: &mut CycleRecord,
    ) {
        let vcs = cfg.vcs_per_port;
        for p in 0..P as u8 {
            if !self.live[p as usize] {
                continue;
            }
            for v in 0..vcs {
                if self.input_vc_disabled(p, v) {
                    continue;
                }
                let pi = p as usize;
                let vi = v as usize;
                let ev_rc = pl.xf_bool(
                    cy,
                    self.id,
                    p,
                    v,
                    SignalKind::VcEvRcDone,
                    scratch.ev_rc[pi][vi],
                );
                let ev_va = pl.xf_bool(
                    cy,
                    self.id,
                    p,
                    v,
                    SignalKind::VcEvVaDone,
                    scratch.ev_va[pi][vi],
                );
                let ev_sa = pl.xf_bool(
                    cy,
                    self.id,
                    p,
                    v,
                    SignalKind::VcEvSaWon,
                    scratch.ev_sa[pi][vi],
                );
                let before = scratch.state_snap[pi][vi];
                {
                    let vcref = &mut self.inputs[pi][vi];
                    if ev_rc {
                        vcref.state = state::VA_PENDING;
                        vcref.out_port =
                            scratch.rc_result[pi][vi].unwrap_or(self.rc_bus[pi]) & 0b111;
                    }
                    if ev_va {
                        vcref.state = state::ACTIVE;
                        vcref.out_vc = scratch.va_result[pi][vi].unwrap_or(self.va_bus[pi]);
                    }
                }
                let vcref = &self.inputs[pi][vi];
                let after = vcref.state;
                let interesting = ev_rc
                    || ev_va
                    || ev_sa
                    || before != state::IDLE
                    || after != state::IDLE
                    || !vcref.buffer.is_empty();
                if interesting {
                    let head_kind = pl.xf(
                        cy,
                        self.id,
                        p,
                        v,
                        SignalKind::BufHeadKind,
                        vcref.buffer.head_kind_wire().bits(),
                    ) & 0b11;
                    let empty = pl.xf_bool(
                        cy,
                        self.id,
                        p,
                        v,
                        SignalKind::BufEmpty,
                        vcref.buffer.is_empty(),
                    );
                    let out_port =
                        pl.xf(cy, self.id, p, v, SignalKind::VcOutPort, vcref.out_port) & 0b111;
                    let out_vc = pl.xf(cy, self.id, p, v, SignalKind::VcOutVc, vcref.out_vc);
                    rec.vc.push(VcEvent {
                        port: p,
                        vc: v,
                        state_before: before,
                        state_after: after,
                        ev_rc_done: ev_rc,
                        ev_va_done: ev_va,
                        ev_sa_won: ev_sa,
                        head_kind,
                        empty,
                        out_port,
                        out_vc,
                    });
                }
            }
        }
    }
}

/// `u64` helper: `trailing_zeros` as `Option`, bounded by `limit`.
trait CheckedTz {
    fn checked_trailing_zeros_lt(self, limit: u32) -> Option<u32>;
}

impl CheckedTz for u64 {
    #[inline]
    fn checked_trailing_zeros_lt(self, limit: u32) -> Option<u32> {
        if self == 0 {
            return None;
        }
        let tz = self.trailing_zeros();
        (tz < limit).then_some(tz)
    }
}
