//! The runtime attacker: a compromised router acting *past* the checkers.
//!
//! NoCAlert's bank observes every router's wire values during the router
//! phase of [`crate::network::Network::step_observed`]; the link phase
//! (2b) that moves staged flits to the neighbours runs *after* that
//! observation. An [`Adversary`] interposes exactly there, on the output
//! links of one compromised router: everything it drops, corrupts,
//! redirects or fabricates is invisible to the invariance checkers at the
//! point of action (the router's pipeline behaved; the wires checked
//! clean), which is what makes these attack models interesting — only
//! *side effects elsewhere* (leaked credits, wrong-destination ejects,
//! unacknowledged messages, forged control packets failing
//! authentication) can betray it.
//!
//! Determinism: all victim selection is a deterministic function of the
//! spec (`every`-periodic counters) and the attacker's private
//! [`SmallRng`] seeded from [`AttackSpec::seed`]. No host state, no
//! wall-clock, no thread identity — an attack campaign's cells replay
//! bit-identically at any worker count.
//!
//! Actions that need cooperation outside the link layer (fabricating
//! control packets, raising fake alerts) are emitted as [`AttackIntent`]s
//! and drained by the attack harness, which performs them through the
//! public `Network`/`Transport` APIs — the adversary itself never holds
//! the NIC-pair authentication secret.

use noc_types::{AttackKind, AttackSpec, Cycle, Direction, NodeId, PacketId};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::router::LinkFlit;

/// How many traversing packet identities the attacker remembers for
/// replay. Small and bounded: a hardware attacker has a capture buffer,
/// not a trace archive.
const CAPTURE_RING: usize = 8;

/// Aggregate interference counters of one attacker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackStats {
    /// Whole packets silently swallowed (all flits).
    pub packets_dropped: u64,
    /// Individual flits dropped by the flit-tearing model.
    pub flits_dropped: u64,
    /// Flits whose corrupted bit was set after checking.
    pub flits_corrupted: u64,
    /// Packets redirected to a wrong-but-legal destination.
    pub packets_misrouted: u64,
    /// Forged-acknowledgement intents emitted.
    pub controls_forged: u64,
    /// Replay intents emitted.
    pub controls_replayed: u64,
    /// Fabricated alert intents emitted.
    pub alerts_flooded: u64,
}

impl AttackStats {
    /// Total interference events: when 0, the attacker never acted and
    /// the campaign cell is vacuous (the oracle must not claim a
    /// mitigation that was never exercised).
    pub fn interference(&self) -> u64 {
        self.packets_dropped
            + self.flits_dropped
            + self.flits_corrupted
            + self.packets_misrouted
            + self.controls_forged
            + self.controls_replayed
            + self.alerts_flooded
    }
}

/// An action the attacker wants performed outside the link layer. Drained
/// by the attack harness via `Network::drain_attack_intents` and executed
/// through public APIs, so fabricated traffic is physically injected at
/// the attacker's node (its flit sources honestly say where it came from
/// — in-model, wire sources cannot be forged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackIntent {
    /// Forge an ACK for a swallowed data packet towards its sender,
    /// claiming to be the receiver. `tag` is the attacker's guess at the
    /// keyed authentication tag (drawn from its private RNG — it does not
    /// hold the NIC-pair secret).
    ForgeAck {
        /// The swallowed data packet (on-wire id).
        victim: PacketId,
        /// The data sender being deceived.
        sender: u16,
        /// The claimed control origin (the data packet's destination).
        claimed_src: u16,
        /// Message class of the victim (controls reuse it).
        class: u8,
        /// Guessed authentication tag.
        tag: u64,
    },
    /// Re-emit a bit-faithful copy of a previously captured packet — for
    /// captured control packets this is a replay carrying the *genuine*
    /// tag.
    Replay {
        /// The captured packet's on-wire id.
        captured: PacketId,
    },
    /// Fabricate one alert against the attacker's own input VC
    /// `(port, vc)` — the containment-plane flooding attack.
    RaiseAlert {
        /// Targeted input port.
        port: u8,
        /// Targeted VC.
        vc: u8,
    },
}

/// Per-packet verdict the attacker reached at the head flit, applied to
/// the rest of the worm so a selected packet is manipulated as a whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WormPlan {
    Swallow,
    Redirect(NodeId),
}

/// The compromised-router state machine. Owned by the [`Network`] it is
/// armed on and consulted once per flit leaving the compromised router.
///
/// [`Network`]: crate::network::Network
#[derive(Debug, Clone)]
pub struct Adversary {
    spec: AttackSpec,
    rng: SmallRng,
    /// Periodic-selection counter (candidates seen).
    counter: u64,
    /// Verdicts for worms currently traversing (head seen, tail not yet).
    plans: BTreeMap<u64, WormPlan>,
    /// Ring of recently captured packet ids (replay candidates).
    captured: Vec<PacketId>,
    /// Next ring slot to overwrite.
    capture_at: usize,
    /// Packets fabricated *on the attacker's behalf* (forged controls,
    /// replays) currently leaving through its own egress links. Exempt
    /// from every manipulation rule: an attacker does not eat, corrupt or
    /// re-capture its own forgeries — without this, `every: 1` spoofing
    /// models swallow their forged controls before any NIC can reject
    /// them, and full-rate replay self-amplifies on its own copies.
    own: BTreeSet<u64>,
    intents: Vec<AttackIntent>,
    stats: AttackStats,
    vcs_per_port: u8,
}

impl Adversary {
    /// Builds the attacker for `spec`. `vcs_per_port` bounds the VC index
    /// of fabricated alerts.
    pub fn new(spec: AttackSpec, vcs_per_port: u8) -> Adversary {
        Adversary {
            spec,
            rng: SmallRng::seed_from_u64(spec.seed),
            counter: 0,
            plans: BTreeMap::new(),
            captured: Vec::new(),
            capture_at: 0,
            own: BTreeSet::new(),
            intents: Vec::new(),
            stats: AttackStats::default(),
            vcs_per_port: vcs_per_port.max(1),
        }
    }

    /// The spec this attacker was armed from.
    pub fn spec(&self) -> AttackSpec {
        self.spec
    }

    /// Interference counters so far.
    pub fn stats(&self) -> AttackStats {
        self.stats
    }

    /// True when the attacker manipulates router `router`'s links at
    /// `cycle`.
    #[inline]
    pub fn armed_at(&self, router: u16, cycle: Cycle) -> bool {
        self.spec.router == router && cycle >= self.spec.start
    }

    /// Queued out-of-band actions (drained by the harness).
    pub fn take_intents(&mut self) -> Vec<AttackIntent> {
        std::mem::take(&mut self.intents)
    }

    /// Marks `pid` as fabricated on this attacker's behalf (a forged
    /// control or replay the harness just injected at its node), so the
    /// egress filter lets it leave untouched. Entries clear when the
    /// worm's tail passes the link.
    pub fn mark_own(&mut self, pid: PacketId) {
        self.own.insert(pid.0);
    }

    /// Periodic victim selection: returns true on every `every`-th
    /// candidate.
    #[inline]
    fn select(&mut self, every: u32) -> bool {
        self.counter += 1;
        self.counter.is_multiple_of(every.max(1) as u64)
    }

    fn capture(&mut self, pid: PacketId) {
        if self.captured.len() < CAPTURE_RING {
            self.captured.push(pid);
        } else {
            self.captured[self.capture_at] = pid;
            self.capture_at = (self.capture_at + 1) % CAPTURE_RING;
        }
    }

    /// Per-cycle hook (called once per cycle while armed): the
    /// alert-flooding model fabricates its alerts here, traffic or not.
    pub fn on_cycle(&mut self, cycle: Cycle) {
        if cycle < self.spec.start {
            return;
        }
        if let AttackKind::AlertFlood { per_cycle } = self.spec.kind {
            for _ in 0..per_cycle {
                // Non-local input ports only: Local-input alerts would
                // accuse the attacker's own NI, which containment maps to
                // nothing useful.
                let port = (self.rng.next_u32() % 4) as u8;
                let vc = (self.rng.next_u32() % self.vcs_per_port as u32) as u8;
                self.intents.push(AttackIntent::RaiseAlert { port, vc });
                self.stats.alerts_flooded += 1;
            }
        }
    }

    /// Link-phase interposition: a flit is leaving the compromised router
    /// towards `next` (`None` for the local ejection path). Returns the
    /// flit to actually put on the wire, or `None` to swallow it.
    pub fn on_link_flit(
        &mut self,
        _dir: Direction,
        next: Option<NodeId>,
        mut lf: LinkFlit,
    ) -> Option<LinkFlit> {
        let pid = lf.flit.packet.0;
        let is_head = lf.flit.is_head();
        let is_tail = lf.flit.kind.is_tail();
        // The attacker's own fabrications pass the egress filter untouched:
        // no capture, no periodic-counter advance, no plan. This is what
        // lets the `every: 1` spoofing models actually deliver their
        // forgeries instead of eating them on the way out.
        if self.own.contains(&pid) {
            if is_tail {
                self.own.remove(&pid);
            }
            return Some(lf);
        }
        if is_head {
            self.capture(lf.flit.packet);
        }
        // Resolve (or decide) this worm's plan.
        let plan = match self.plans.get(&pid).copied() {
            Some(p) => Some(p),
            None if is_head => {
                let p = self.decide(next, &lf);
                if let Some(p) = p {
                    if !is_tail {
                        self.plans.insert(pid, p);
                    }
                    match p {
                        WormPlan::Swallow => match self.spec.kind {
                            AttackKind::AckSpoof { .. } => {}
                            _ => self.stats.packets_dropped += 1,
                        },
                        WormPlan::Redirect(_) => self.stats.packets_misrouted += 1,
                    }
                }
                p
            }
            None => None,
        };
        if is_tail {
            self.plans.remove(&pid);
        }
        if let Some(plan) = plan {
            return match plan {
                WormPlan::Swallow => None,
                WormPlan::Redirect(fake) => {
                    lf.flit.dest = fake;
                    Some(lf)
                }
            };
        }
        // Per-flit models (no worm-level plan).
        let kind = self.spec.kind;
        match kind {
            AttackKind::FlitDrop { every } if self.select(every) => {
                self.stats.flits_dropped += 1;
                return None;
            }
            AttackKind::PayloadCorrupt { every } if self.select(every) => {
                lf.flit.corrupted = true;
                self.stats.flits_corrupted += 1;
            }
            AttackKind::CtlReplay { every }
                if is_head && self.select(every) && !self.captured.is_empty() =>
            {
                let i = self.rng.next_u32() as usize % self.captured.len();
                self.intents.push(AttackIntent::Replay {
                    captured: self.captured[i],
                });
                self.stats.controls_replayed += 1;
            }
            _ => {}
        }
        Some(lf)
    }

    /// Head-flit decision for the worm-level models. `None` means this
    /// worm passes untouched.
    fn decide(&mut self, next: Option<NodeId>, lf: &LinkFlit) -> Option<WormPlan> {
        match self.spec.kind {
            AttackKind::PacketDrop { every } => self.select(every).then_some(WormPlan::Swallow),
            AttackKind::Misroute { every } => {
                // Redirect to the very node the flit is being handed to:
                // the downstream router sees a packet legitimately
                // addressed to itself and ejects it — every hop is
                // locally legal, no turn checker can object, and the worm
                // quietly lands at the wrong NI. Locally-ejecting flits
                // (next == None) are already at their last hop and are
                // left alone.
                match next {
                    Some(nb) if nb != lf.flit.dest && self.select(every) => {
                        Some(WormPlan::Redirect(nb))
                    }
                    _ => None,
                }
            }
            AttackKind::AckSpoof { every } => {
                if self.select(every) {
                    // Swallow the worm and try to close the sender's ARQ
                    // window with a forged ACK. The tag is a guess: the
                    // attacker never holds the NIC-pair secret.
                    let tag = self.rng.next_u64();
                    self.intents.push(AttackIntent::ForgeAck {
                        victim: lf.flit.packet,
                        sender: lf.flit.src.0,
                        claimed_src: lf.flit.dest.0,
                        class: lf.flit.class,
                        tag,
                    });
                    self.stats.controls_forged += 1;
                    self.stats.packets_dropped += 1;
                    Some(WormPlan::Swallow)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::flit::{make_packet, FlitKind};

    fn spec(kind: AttackKind) -> AttackSpec {
        AttackSpec {
            router: 5,
            kind,
            start: 0,
            seed: 42,
        }
    }

    fn worm(pid: u64, len: u16) -> Vec<LinkFlit> {
        make_packet(
            PacketId(pid),
            pid * 100 + 1,
            NodeId(0),
            NodeId(9),
            0,
            len,
            0,
        )
        .into_iter()
        .map(|flit| LinkFlit { flit, vc: 0 })
        .collect()
    }

    #[test]
    fn packet_drop_swallows_whole_worms_periodically() {
        let mut adv = Adversary::new(spec(AttackKind::PacketDrop { every: 2 }), 2);
        let mut dropped = 0;
        for pid in 0..10u64 {
            for lf in worm(pid, 5) {
                if adv
                    .on_link_flit(Direction::East, Some(NodeId(6)), lf)
                    .is_none()
                {
                    dropped += 1;
                }
            }
        }
        // Every 2nd worm vanishes entirely: 5 worms x 5 flits.
        assert_eq!(dropped, 25);
        assert_eq!(adv.stats().packets_dropped, 5);
        assert!(adv.plans.is_empty(), "plans must clear at tails");
    }

    #[test]
    fn misroute_redirects_every_flit_of_the_worm_to_the_next_hop() {
        let mut adv = Adversary::new(spec(AttackKind::Misroute { every: 1 }), 2);
        for lf in worm(3, 4) {
            let out = adv
                .on_link_flit(Direction::East, Some(NodeId(6)), lf)
                .expect("misroute never drops");
            assert_eq!(out.flit.dest, NodeId(6));
        }
        assert_eq!(adv.stats().packets_misrouted, 1);
        // Locally-ejecting flits are left alone (already at the last hop).
        let mut adv = Adversary::new(spec(AttackKind::Misroute { every: 1 }), 2);
        for lf in worm(4, 2) {
            let out = adv.on_link_flit(Direction::Local, None, lf).expect("kept");
            assert_eq!(out.flit.dest, NodeId(9));
        }
        assert_eq!(adv.stats().packets_misrouted, 0);
    }

    #[test]
    fn ack_spoof_swallows_and_emits_forge_intent() {
        let mut adv = Adversary::new(spec(AttackKind::AckSpoof { every: 1 }), 2);
        for lf in worm(7, 3) {
            assert!(adv
                .on_link_flit(Direction::East, Some(NodeId(6)), lf)
                .is_none());
        }
        let intents = adv.take_intents();
        assert_eq!(intents.len(), 1);
        match intents[0] {
            AttackIntent::ForgeAck {
                victim,
                sender,
                claimed_src,
                ..
            } => {
                assert_eq!(victim, PacketId(7));
                assert_eq!(sender, 0);
                assert_eq!(claimed_src, 9);
            }
            other => panic!("expected ForgeAck, got {other:?}"),
        }
        assert!(adv.take_intents().is_empty(), "drain is destructive");
    }

    #[test]
    fn own_forgeries_pass_the_egress_filter_untouched() {
        // The full-rate spoofing attacker must not swallow the forged
        // controls injected on its own behalf — nor advance its periodic
        // counter or capture ring on them.
        let mut adv = Adversary::new(spec(AttackKind::AckSpoof { every: 1 }), 2);
        adv.mark_own(PacketId(100));
        for lf in worm(100, 3) {
            let out = adv
                .on_link_flit(Direction::East, Some(NodeId(6)), lf)
                .expect("own forgery must leave the router");
            assert!(!out.flit.corrupted);
        }
        assert_eq!(adv.stats().packets_dropped, 0);
        assert_eq!(adv.stats().controls_forged, 0);
        assert!(adv.captured.is_empty(), "own packets are never captured");
        assert!(adv.own.is_empty(), "own marks clear at the tail");
        // The very next victim is still the counter's first candidate.
        for lf in worm(101, 3) {
            assert!(adv
                .on_link_flit(Direction::East, Some(NodeId(6)), lf)
                .is_none());
        }
        assert_eq!(adv.stats().controls_forged, 1);
    }

    #[test]
    fn replay_never_amplifies_on_its_own_copies() {
        // A full-rate replay attacker sees its own replayed copies leave
        // through the same links; without the egress exemption each copy
        // would be re-captured and re-replayed, amplifying forever.
        let mut adv = Adversary::new(spec(AttackKind::CtlReplay { every: 1 }), 2);
        for lf in worm(1, 1) {
            adv.on_link_flit(Direction::East, Some(NodeId(6)), lf);
        }
        for lf in worm(2, 1) {
            adv.on_link_flit(Direction::East, Some(NodeId(6)), lf);
        }
        let before = adv.stats().controls_replayed;
        adv.mark_own(PacketId(50));
        for lf in worm(50, 1) {
            adv.on_link_flit(Direction::East, Some(NodeId(6)), lf);
        }
        assert_eq!(adv.stats().controls_replayed, before);
        assert!(!adv.captured.contains(&PacketId(50)));
    }

    #[test]
    fn payload_corrupt_sets_the_bit_after_checking() {
        let mut adv = Adversary::new(spec(AttackKind::PayloadCorrupt { every: 3 }), 2);
        let mut corrupted = 0;
        for pid in 0..4u64 {
            for lf in worm(pid, 3) {
                let out = adv
                    .on_link_flit(Direction::North, Some(NodeId(1)), lf)
                    .expect("corruption never drops");
                if out.flit.corrupted {
                    corrupted += 1;
                }
            }
        }
        assert_eq!(corrupted, 4, "every 3rd of 12 flits");
        assert_eq!(adv.stats().flits_corrupted, 4);
    }

    #[test]
    fn replay_targets_come_from_the_bounded_capture_ring() {
        let mut adv = Adversary::new(spec(AttackKind::CtlReplay { every: 1 }), 2);
        for pid in 0..40u64 {
            for lf in worm(pid, 1) {
                assert_eq!(lf.flit.kind, FlitKind::HeadTail);
                adv.on_link_flit(Direction::East, Some(NodeId(6)), lf);
            }
        }
        assert!(adv.captured.len() <= CAPTURE_RING);
        let intents = adv.take_intents();
        // First head has nothing captured yet to replay; all later do.
        assert_eq!(intents.len() as u64, adv.stats().controls_replayed);
        assert!(intents.len() >= 38);
    }

    #[test]
    fn flood_generates_alert_intents_every_cycle() {
        let mut adv = Adversary::new(spec(AttackKind::AlertFlood { per_cycle: 3 }), 2);
        adv.on_cycle(0);
        adv.on_cycle(1);
        let intents = adv.take_intents();
        assert_eq!(intents.len(), 6);
        for i in intents {
            match i {
                AttackIntent::RaiseAlert { port, vc } => {
                    assert!(port < 4);
                    assert!(vc < 2);
                }
                other => panic!("expected RaiseAlert, got {other:?}"),
            }
        }
    }

    #[test]
    fn attacker_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut adv = Adversary::new(
                AttackSpec {
                    seed,
                    ..spec(AttackKind::AckSpoof { every: 2 })
                },
                2,
            );
            for pid in 0..12u64 {
                for lf in worm(pid, 3) {
                    adv.on_link_flit(Direction::East, Some(NodeId(6)), lf);
                }
            }
            (adv.take_intents(), adv.stats())
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).0, run(2).0, "different seeds forge different tags");
    }
}
